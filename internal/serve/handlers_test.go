package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer boots a Server behind httptest and tears both down with
// the test.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// doJSON posts body to path and returns the response with its bytes read.
func doJSON(t *testing.T, ts *httptest.Server, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// readErrorBody decodes the typed error envelope.
func readErrorBody(t *testing.T, body []byte) errorDetail {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not the typed envelope: %v\n%s", err, body)
	}
	if eb.Error.Kind == "" || eb.Error.Message == "" {
		t.Fatalf("error envelope missing kind or message: %s", body)
	}
	return eb.Error
}

const validEvaluateBody = `{"workload": {"name": "w", "qubits": 8, "two_qubit_gates": 4}, "runs": 2}`

// TestHandlersRejectBadRequestsTyped drives every endpoint with the
// malformed-input table: each case must produce a typed 4xx JSON error —
// never a 500, never a crash.
func TestHandlersRejectBadRequestsTyped(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 4096})
	endpoints := []string{"/v1/evaluate", "/v1/sweep", "/v1/explore"}

	type tc struct {
		name       string
		method     string
		body       string
		wantStatus int
		wantKind   string
		wantSubstr string
	}
	cases := []tc{
		{"malformed json", http.MethodPost, `{"workload": `, http.StatusBadRequest, "input", "invalid request body"},
		{"unknown field", http.MethodPost, `{"bogus_knob": 1}`, http.StatusBadRequest, "input", "bogus_knob"},
		{"wrong field type", http.MethodPost, `{"runs": "many"}`, http.StatusBadRequest, "input", "invalid request body"},
		{"trailing data", http.MethodPost, `{} {}`, http.StatusBadRequest, "input", "trailing data"},
		{"array body", http.MethodPost, `[1, 2]`, http.StatusBadRequest, "input", "invalid request body"},
		{"oversized body", http.MethodPost, `{"pad": "` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge, "input", "exceeds"},
		{"wrong method", http.MethodGet, ``, http.StatusMethodNotAllowed, "input", "POST"},
		{"deleted method", http.MethodDelete, ``, http.StatusMethodNotAllowed, "input", "POST"},
	}
	for _, ep := range endpoints {
		for _, c := range cases {
			t.Run(ep+"/"+c.name, func(t *testing.T) {
				resp, body := doJSON(t, ts, c.method, ep, c.body)
				if resp.StatusCode != c.wantStatus {
					t.Fatalf("status = %d, want %d\n%s", resp.StatusCode, c.wantStatus, body)
				}
				if resp.StatusCode >= 500 {
					t.Fatalf("bad input produced a server error: %d\n%s", resp.StatusCode, body)
				}
				det := readErrorBody(t, body)
				if det.Kind != c.wantKind {
					t.Errorf("kind = %q, want %q (%s)", det.Kind, c.wantKind, det.Message)
				}
				if !strings.Contains(det.Message, c.wantSubstr) {
					t.Errorf("message = %q, want it to mention %q", det.Message, c.wantSubstr)
				}
				if c.wantStatus == http.StatusMethodNotAllowed {
					if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
						t.Errorf("Allow = %q, want POST", allow)
					}
				}
			})
		}
	}
}

// TestHandlersRejectSemanticInputTyped checks domain-level validation
// failures (not JSON shape) also map to 400 input errors.
func TestHandlersRejectSemanticInputTyped(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		path       string
		body       string
		wantSubstr string
	}{
		{"/v1/evaluate", `{"workload": {"name": "w", "qubits": -2}}`, "qubits"},
		{"/v1/evaluate", `{"workload": {"name": "w", "qubits": 8}, "placer": "nope"}`, "nope"},
		{"/v1/sweep", `{}`, "no workload"},
		{"/v1/sweep", `{"qv": true, "qubit_range": "banana"}`, "qubit-range"},
		{"/v1/sweep", `{"qubits": 8, "topology": "torus"}`, "torus"},
		{"/v1/explore", `{"spec": {"name": "w", "qubits": 0}}`, "qubits"},
	}
	for _, c := range cases {
		t.Run(c.path+"/"+c.wantSubstr, func(t *testing.T) {
			resp, body := doJSON(t, ts, http.MethodPost, c.path, c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400\n%s", resp.StatusCode, body)
			}
			det := readErrorBody(t, body)
			if det.Kind != "input" {
				t.Errorf("kind = %q, want input", det.Kind)
			}
			if !strings.Contains(det.Message, c.wantSubstr) {
				t.Errorf("message = %q, want it to mention %q", det.Message, c.wantSubstr)
			}
		})
	}
}

// TestHandlerDeadlineExceeded caps a deliberately heavy sweep at 1ms and
// expects the typed 408.
func TestHandlerDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"qv": true, "qubit_range": "8:128:8", "runs": 200, "timeout_ms": 1}`
	resp, b := doJSON(t, ts, http.MethodPost, "/v1/sweep", body)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408\n%s", resp.StatusCode, b)
	}
	det := readErrorBody(t, b)
	if det.Kind != "timeout" {
		t.Errorf("kind = %q, want timeout", det.Kind)
	}
}

// TestHandlerSaturationReturns429 fills the only evaluation slot (no
// queue) and expects the typed 429 with a Retry-After hint.
func TestHandlerSaturationReturns429(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 3 * time.Second})
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatalf("prefill slot: %v", err)
	}
	defer release()

	resp, body := doJSON(t, ts, http.MethodPost, "/v1/evaluate", validEvaluateBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want %q", ra, "3")
	}
	det := readErrorBody(t, body)
	if det.Kind != "overloaded" {
		t.Errorf("kind = %q, want overloaded", det.Kind)
	}
	snap := s.MetricsSnapshot()
	if snap.Endpoints.Evaluate.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", snap.Endpoints.Evaluate.Rejected)
	}
}

// TestHandlerAfterCloseReturns503 checks requests arriving after Close
// get the shutting-down answer, not a hang or a 500-with-stack.
func TestHandlerAfterCloseReturns503(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp, body := doJSON(t, ts, http.MethodPost, "/v1/evaluate", validEvaluateBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503\n%s", resp.StatusCode, body)
	}
	det := readErrorBody(t, body)
	if !strings.Contains(det.Message, "shutting down") {
		t.Errorf("message = %q, want shutdown notice", det.Message)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := doJSON(t, ts, http.MethodGet, "/healthz", "")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q, want 200 %q", resp.StatusCode, body, "ok\n")
	}
}

// TestMetricsEndpoint checks the snapshot parses, counts requests, and
// rejects non-GET methods.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if resp, body := doJSON(t, ts, http.MethodPost, "/v1/evaluate", validEvaluateBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d\n%s", resp.StatusCode, body)
	}
	if resp, body := doJSON(t, ts, http.MethodPost, "/v1/evaluate", `{"runs": "x"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad evaluate = %d\n%s", resp.StatusCode, body)
	}

	resp, body := doJSON(t, ts, http.MethodGet, "/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d\n%s", resp.StatusCode, body)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics body does not parse as Snapshot: %v\n%s", err, body)
	}
	ep := snap.Endpoints.Evaluate
	if ep.Requests != 2 || ep.ClientErrors != 1 {
		t.Errorf("evaluate counters = %+v, want 2 requests / 1 client error", ep)
	}
	if snap.Pool.Jobs == 0 {
		t.Errorf("pool jobs = 0, want > 0 after an evaluation")
	}
	if snap.Cache.Bind.Misses == 0 {
		t.Errorf("bind cache misses = 0, want > 0 after an evaluation")
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime = %v, want >= 0", snap.UptimeSeconds)
	}

	if resp, _ := doJSON(t, ts, http.MethodPost, "/metrics", "{}"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}

// TestCrossRequestCacheSharing checks the second identical-plan request
// (sequential, so not coalesced) hits the stage cache the first one
// populated.
func TestCrossRequestCacheSharing(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := `{"app": "QAOA", "runs": 3}`
	resp1, b1 := doJSON(t, ts, http.MethodPost, "/v1/sweep", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first sweep = %d\n%s", resp1.StatusCode, b1)
	}
	hitsAfterFirst := s.MetricsSnapshot().Cache.Bind.Hits
	resp2, b2 := doJSON(t, ts, http.MethodPost, "/v1/sweep", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second sweep = %d\n%s", resp2.StatusCode, b2)
	}
	if string(b1) != string(b2) {
		t.Fatalf("identical sequential requests returned different bodies")
	}
	hitsAfterSecond := s.MetricsSnapshot().Cache.Bind.Hits
	if hitsAfterSecond <= hitsAfterFirst {
		t.Errorf("bind hits did not grow across requests: %d -> %d", hitsAfterFirst, hitsAfterSecond)
	}
}
