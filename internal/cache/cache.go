// Package cache provides the deterministic, size-bounded, sharded memo
// store behind VelociTI's stage pipeline (internal/core.Stages).
//
// Sweep engines evaluate grids whose cells differ only in late-stage knobs
// (the weak-link penalty α enters at the final timing step), so early-stage
// artifacts — synthesized circuits, layouts, latency-class bindings — repeat
// across cells. A Cache memoizes them under canonical stage-input
// fingerprints.
//
// The store is written for the repo's worker-pool discipline
// (internal/pool): results must be bit-identical at every worker count.
// Caching a deterministic computation can never change a value, but a
// bounded cache's *retained set* usually depends on arrival order (LRU does,
// for example), which would make hit/miss patterns — and therefore wall
// clock and allocation profiles — scheduling-dependent. This cache instead
// uses rank-based retention: every key has a fixed rank (a 64-bit FNV-1a
// hash, ties broken by the key string), and a full shard always retains the
// lowest-ranked keys among everything inserted into it. The final contents
// after any set of inserts are a pure function of that set — never of
// insertion order, interleaving, or timing — a property the test suite pins
// under concurrent access.
//
// All operations are safe for concurrent use. Hit, miss, and eviction
// counters are maintained with atomics and snapshot via Stats.
package cache

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Keyer is implemented by policy values that can describe their behavior-
// relevant configuration as a canonical string. Stage pipelines refuse to
// cache artifacts produced by policies that do not implement it: a wrong
// cache key silently corrupts results, so "no key" must mean "no caching",
// never "guess".
type Keyer interface {
	// CacheKey returns a canonical fingerprint of the value's configuration.
	// Two values with equal keys must behave identically on all inputs.
	CacheKey() string
}

// Stats is a point-in-time snapshot of a cache's counters. The JSON field
// names are part of the velociti-serve /metrics schema.
type Stats struct {
	// Hits and Misses count Get/GetOrCompute lookups.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries displaced by lower-ranked keys.
	Evictions uint64 `json:"evictions"`
	// Rejected counts inserts declined because the shard was full and the
	// new key ranked above every resident (the value was still returned to
	// the caller, just not retained).
	Rejected uint64 `json:"rejected"`
	// Entries is the number of currently retained artifacts.
	Entries int `json:"entries"`
}

// numShards spreads lock contention across the worker pool; must be a
// power of two.
const numShards = 16

// Cache is a deterministic, size-bounded, sharded memo store. The zero
// value is not usable; construct with New.
type Cache struct {
	shards   [numShards]shard
	shardCap int // per-shard entry bound; 0 = unbounded

	hits, misses, evictions, rejected atomic.Uint64
}

type shard struct {
	mu sync.Mutex
	m  map[string]any
}

// New returns a cache retaining at most capacity entries (rounded up to a
// multiple of the shard count). capacity <= 0 disables the bound.
func New(capacity int) *Cache {
	c := &Cache{}
	if capacity > 0 {
		c.shardCap = (capacity + numShards - 1) / numShards
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]any)
	}
	return c
}

// rank is the fixed retention priority of a key: lower ranks are retained
// in preference to higher ones. FNV-1a spreads ranks uniformly so retention
// is not biased toward any key shape.
func rank(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //vet:allow errcheck-lite -- hash.Hash.Write never returns an error
	return h.Sum64()
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[rank(key)&(numShards-1)]
}

// Get returns the artifact stored under key, if any.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put stores value under key, applying the deterministic retention policy:
// if the shard is full, the resident with the highest (rank, key) is
// evicted when the new key ranks below it, otherwise the insert is
// rejected. Put never affects the hit/miss counters.
func (c *Cache) Put(key string, value any) {
	s := c.shardFor(key)
	s.mu.Lock()
	c.putLocked(s, key, value)
	s.mu.Unlock()
}

// putLocked implements the retention policy; the shard lock must be held.
func (c *Cache) putLocked(s *shard, key string, value any) {
	if _, ok := s.m[key]; ok {
		s.m[key] = value
		return
	}
	if c.shardCap > 0 && len(s.m) >= c.shardCap {
		// Find the worst resident under the fixed total order. The linear
		// scan runs only on inserts into a full shard; shard capacities are
		// small (total capacity / 16) and the hot path is hits.
		worstKey, worstRank, found := "", uint64(0), false
		for k := range s.m {
			r := rank(k)
			if !found || r > worstRank || (r == worstRank && k > worstKey) {
				worstKey, worstRank, found = k, r, true
			}
		}
		nr := rank(key)
		if nr > worstRank || (nr == worstRank && key > worstKey) {
			c.rejected.Add(1)
			return
		}
		delete(s.m, worstKey)
		c.evictions.Add(1)
	}
	s.m[key] = value
}

// GetOrCompute returns the artifact stored under key, computing and
// retaining it on a miss. When two goroutines miss the same key
// concurrently, both compute (the computations are deterministic, so the
// values agree); the store keeps one. A compute error is returned to the
// caller and nothing is cached.
func (c *Cache) GetOrCompute(key string, compute func() (any, error)) (any, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if v, ok := s.m[key]; ok {
		s.mu.Unlock()
		c.hits.Add(1)
		return v, nil
	}
	s.mu.Unlock()
	c.misses.Add(1)
	v, err := compute()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	c.putLocked(s, key, v)
	s.mu.Unlock()
	return v, nil
}

// Len returns the number of retained entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejected.Load(),
		Entries:   c.Len(),
	}
}
