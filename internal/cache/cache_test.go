package cache

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"velociti/internal/stats"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2) // overwrite
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New(0)
	calls := 0
	f := func() (any, error) { calls++; return "value", nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute("k", f)
		if err != nil || v.(string) != "value" {
			t.Fatalf("GetOrCompute = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute was cached")
	}
	v, err := c.GetOrCompute("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("recovery compute = %v, %v", v, err)
	}
}

// retainedSet computes the expected final contents for a set of inserted
// keys under the documented policy: per shard, the shardCap lowest-(rank,
// key) keys survive.
func retainedSet(keys []string, capacity int) map[string]bool {
	shardCap := (capacity + numShards - 1) / numShards
	byShard := make(map[uint64][]string)
	seen := make(map[string]bool)
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		byShard[rank(k)&(numShards-1)] = append(byShard[rank(k)&(numShards-1)], k)
	}
	want := make(map[string]bool)
	for _, ks := range byShard {
		sort.Slice(ks, func(i, j int) bool {
			ri, rj := rank(ks[i]), rank(ks[j])
			if ri != rj {
				return ri < rj
			}
			return ks[i] < ks[j]
		})
		if len(ks) > shardCap {
			ks = ks[:shardCap]
		}
		for _, k := range ks {
			want[k] = true
		}
	}
	return want
}

func contents(c *Cache) map[string]bool {
	got := make(map[string]bool)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.m {
			got[k] = true
		}
		s.mu.Unlock()
	}
	return got
}

// TestDeterministicEvictionConcurrent pins the store's headline contract:
// the retained set after any sequence of inserts depends only on the SET of
// keys, never on order, interleaving, or goroutine scheduling.
func TestDeterministicEvictionConcurrent(t *testing.T) {
	const capacity, nKeys = 64, 512
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("artifact-%04d", i)
	}
	want := retainedSet(keys, capacity)

	for trial := 0; trial < 4; trial++ {
		c := New(capacity)
		shuffled := append([]string(nil), keys...)
		stats.Shuffle(stats.NewRand(int64(trial+1)), shuffled)
		var wg sync.WaitGroup
		const workers = 8
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(shuffled); i += workers {
					c.Put(shuffled[i], i)
				}
			}(w)
		}
		wg.Wait()
		if got := contents(c); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: retained set differs from order-independent expectation\n got %d entries, want %d", trial, len(got), len(want))
		}
		if st := c.Stats(); st.Entries != len(want) {
			t.Fatalf("trial %d: Entries = %d, want %d", trial, st.Entries, len(want))
		}
	}
}

// TestEvictionCounters checks that a full shard either evicts or rejects on
// every further distinct insert.
func TestEvictionCounters(t *testing.T) {
	c := New(numShards) // one entry per shard
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%03d", i), i)
	}
	st := c.Stats()
	if st.Entries > numShards {
		t.Fatalf("bound violated: %d entries retained with capacity %d", st.Entries, numShards)
	}
	if st.Evictions+st.Rejected == 0 {
		t.Fatal("no evictions or rejections recorded despite overflow")
	}
}

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	c := New(0)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	st := c.Stats()
	if st.Entries != 1000 || st.Evictions != 0 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentGetOrCompute exercises the racy-miss path under the race
// detector: concurrent computes of one key must agree and leave one entry.
func TestConcurrentGetOrCompute(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				key := fmt.Sprintf("k%02d", i%16)
				v, err := c.GetOrCompute(key, func() (any, error) { return key + "!", nil })
				if err != nil || v.(string) != key+"!" {
					t.Errorf("GetOrCompute(%s) = %v, %v", key, v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
}
