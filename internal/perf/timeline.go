package perf

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"velociti/internal/circuit"
	"velociti/internal/ti"
)

// Interval is one scheduled gate execution in a Timeline.
type Interval struct {
	// GateID indexes into the placed circuit's gate list.
	GateID int `json:"gate"`
	// Label is the gate's SSA label ("q3q4.2").
	Label string `json:"label"`
	// Start and Finish are in µs from circuit start.
	Start  float64 `json:"start_us"`
	Finish float64 `json:"finish_us"`
	// Chains lists the chains the gate occupies (two for weak-link gates).
	Chains []int `json:"chains"`
	// Weak marks cross-chain gates.
	Weak bool `json:"weak"`
}

// Timeline is the full as-soon-as-possible schedule implied by the parallel
// performance model: each gate starts the moment every gate it depends on
// has finished. Its Makespan equals ParallelTime; the per-gate intervals
// support Gantt-style inspection of where the critical path and the
// weak-link serialization live.
type Timeline struct {
	Intervals []Interval `json:"intervals"`
	// Makespan is the total execution time in µs.
	Makespan float64 `json:"makespan_us"`
	// NumChains is the device's chain count.
	NumChains int `json:"num_chains"`
}

// BuildTimeline computes the ASAP schedule of a placed circuit.
func BuildTimeline(c *circuit.Circuit, l *ti.Layout, lat Latencies) (*Timeline, error) {
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if c.NumQubits() > l.NumQubits() {
		return nil, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	labels := c.Labels()
	tl := &Timeline{NumChains: l.Device().NumChains()}
	last := make([]int, c.NumQubits())
	for i := range last {
		last[i] = -1
	}
	finish := make([]float64, c.NumGates())
	for _, g := range c.Gates() {
		ready := 0.0
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 && finish[p] > ready {
				ready = finish[p]
			}
		}
		d := lat.GateLatency(g, l)
		finish[g.ID] = ready + d
		for _, q := range g.Qubits {
			last[q] = g.ID
		}
		chains := make([]int, 0, 2)
		seen := map[int]bool{}
		for _, q := range g.Qubits {
			ch := l.ChainOf(q)
			if !seen[ch] {
				seen[ch] = true
				chains = append(chains, ch)
			}
		}
		sort.Ints(chains)
		tl.Intervals = append(tl.Intervals, Interval{
			GateID: g.ID,
			Label:  labels[g.ID],
			Start:  ready,
			Finish: finish[g.ID],
			Chains: chains,
			Weak:   len(chains) > 1,
		})
		if finish[g.ID] > tl.Makespan {
			tl.Makespan = finish[g.ID]
		}
	}
	return tl, nil
}

// ChainLanes groups the intervals by chain (a weak-link gate appears in
// both of its chains' lanes), each lane sorted by start time.
func (t *Timeline) ChainLanes() [][]Interval {
	lanes := make([][]Interval, t.NumChains)
	for _, iv := range t.Intervals {
		for _, ch := range iv.Chains {
			lanes[ch] = append(lanes[ch], iv)
		}
	}
	for _, lane := range lanes {
		sort.Slice(lane, func(i, j int) bool {
			if lane[i].Start != lane[j].Start {
				return lane[i].Start < lane[j].Start
			}
			return lane[i].GateID < lane[j].GateID
		})
	}
	return lanes
}

// Concurrency returns the maximum number of gates executing simultaneously
// — a direct measure of the intra-chain parallelism the parallel model
// exploits over the serial baseline.
func (t *Timeline) Concurrency() int {
	type event struct {
		at    float64
		delta int
	}
	events := make([]event, 0, 2*len(t.Intervals))
	for _, iv := range t.Intervals {
		if iv.Finish <= iv.Start {
			continue
		}
		events = append(events, event{iv.Start, +1}, event{iv.Finish, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Process finishes before starts at the same instant.
		return events[i].delta < events[j].delta
	})
	cur, best := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > best {
			best = cur
		}
	}
	return best
}

// Gantt renders the timeline as a fixed-width ASCII chart with one row per
// chain. Each row is width columns wide; a column is '#' when the chain is
// running an intra-chain gate in that slice, 'W' when it is held by a
// weak-link gate, and '.' when idle.
func (t *Timeline) Gantt(width int) string {
	if width <= 0 {
		width = 80
	}
	if t.Makespan == 0 {
		return "(empty timeline)\n"
	}
	lanes := t.ChainLanes()
	var b strings.Builder
	fmt.Fprintf(&b, "gantt: %d chains, makespan %.1f µs, peak concurrency %d\n",
		t.NumChains, t.Makespan, t.Concurrency())
	slice := t.Makespan / float64(width)
	for ch, lane := range lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range lane {
			from := int(iv.Start / slice)
			to := int((iv.Finish - 1e-9) / slice)
			if to >= width {
				to = width - 1
			}
			mark := byte('#')
			if iv.Weak {
				mark = 'W'
			}
			for i := from; i <= to; i++ {
				// Weak-link occupancy dominates in the display.
				if row[i] != 'W' {
					row[i] = mark
				}
			}
		}
		fmt.Fprintf(&b, "chain %2d |%s|\n", ch, row)
	}
	return b.String()
}

// traceEvent is one Catapult/Chrome-tracing complete event.
type traceEvent struct {
	Name     string  `json:"name"`
	Phase    string  `json:"ph"`
	StartUs  float64 `json:"ts"`
	DurUs    float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
	Category string  `json:"cat,omitempty"`
}

// TraceJSON renders the timeline in the Chrome tracing (Catapult) JSON
// array format: one complete ("X") event per gate occupancy, with chains
// as threads. Load the output at chrome://tracing or in Perfetto to
// inspect schedules visually. Weak-link gates appear once per chain they
// occupy, categorized "weak".
func (t *Timeline) TraceJSON() ([]byte, error) {
	events := make([]traceEvent, 0, len(t.Intervals)*2)
	for _, iv := range t.Intervals {
		cat := ""
		if iv.Weak {
			cat = "weak"
		}
		for _, ch := range iv.Chains {
			events = append(events, traceEvent{
				Name:     iv.Label,
				Phase:    "X",
				StartUs:  iv.Start,
				DurUs:    iv.Finish - iv.Start,
				PID:      0,
				TID:      ch,
				Category: cat,
			})
		}
	}
	return json.Marshal(events)
}

// Utilization returns the busy fraction of each chain over the makespan,
// counting weak-link gates against both chains.
func (t *Timeline) Utilization() []float64 {
	util := make([]float64, t.NumChains)
	if t.Makespan == 0 {
		return util
	}
	for _, iv := range t.Intervals {
		for _, ch := range iv.Chains {
			util[ch] += iv.Finish - iv.Start
		}
	}
	for i := range util {
		util[i] /= t.Makespan
		if util[i] > 1 {
			util[i] = 1
		}
	}
	return util
}
