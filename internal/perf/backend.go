package perf

// This file names the seam between gate binding and gate pricing as an
// interface. core.Stages binds a circuit to a layout once (Bind) and then
// asks a TimingBackend to price the binding (Time/TimeAll); everything
// upstream of the seam — synthesis, placement, classification — is shared
// between backends, and everything downstream is backend-owned. The
// weak-link parallel model (WeakLink, the paper's Eq. 1–2 + ASAP DP) is
// the default and the oracle; internal/shuttle adapts its explicit
// ion-transport pricing into a second backend.

import (
	"velociti/internal/circuit"
	"velociti/internal/ti"
)

// TimingBackend prices bound circuits under the latency models of a
// sweep. Implementations must be immutable values: the backend
// participates in cache keys (CacheKey) and in the serve layer's request
// coalescing, so two backends with equal keys must price identically.
type TimingBackend interface {
	// Name is the backend's selector name as it appears in flags and
	// request schemas ("weaklink", "shuttle").
	Name() string
	// CacheKey fingerprints the backend and every pricing parameter it
	// carries. Stage-pipeline bind keys embed it so bindings prepared for
	// different backends never collide in a shared artifact cache.
	CacheKey() string
	// Validate rejects unusable pricing parameters with a typed input
	// error (verr).
	Validate() error
	// Prepare attaches whatever layout-dependent, latency-independent
	// annotations the backend needs to price b — e.g. the shuttle
	// backend's per-gate transport paths. It runs at Bind time, before
	// the binding is published to caches or shared across goroutines,
	// and must be idempotent. The weak-link backend needs nothing.
	Prepare(b *Binding, l *ti.Layout) error
	// Time prices the binding under one timing model.
	Time(b *Binding, lat Latencies) (Result, error)
	// TimeAll prices the binding under every timing model in lats in one
	// pass; entry j must equal Time(lats[j]) bit for bit. This is the
	// parametric kernel contract behind α sweeps: batched and per-cell
	// pricing are interchangeable at any worker count.
	TimeAll(b *Binding, lats []Latencies) ([]Result, error)
}

// SourceTimer is the streaming capability of a timing backend: pricing a
// gate stream directly, without a materialized circuit or Binding, in
// memory independent of gate count. Backends that genuinely require
// materialization simply do not implement it, and core falls back with a
// typed input error. Entry j of the result must equal TimeAll's entry j on
// the materialized circuit bit for bit, except that CriticalPath is
// omitted (see internal/perf/stream.go).
type SourceTimer interface {
	StreamTimeAll(src circuit.Source, l *ti.Layout, lats []Latencies) ([]Result, StreamStats, error)
}

// WeakLink is the paper's timing model as a backend: cross-chain gates
// cost α·γ on a weak link, and the parallel model is the ASAP finish-time
// dynamic program. It is the zero value of backend selection — a nil
// backend in core.Config normalizes to WeakLink{}.
type WeakLink struct{}

// Name returns "weaklink".
func (WeakLink) Name() string { return "weaklink" }

// CacheKey returns "weaklink"; the backend carries no parameters beyond
// the Latencies every backend receives per call.
func (WeakLink) CacheKey() string { return "weaklink" }

// Validate always succeeds.
func (WeakLink) Validate() error { return nil }

// Prepare is a no-op: the weak-link model prices straight off the gate
// classes.
func (WeakLink) Prepare(*Binding, *ti.Layout) error { return nil }

// Time prices the binding under one timing model via Binding.Time.
func (WeakLink) Time(b *Binding, lat Latencies) (Result, error) { return b.Time(lat) }

// TimeAll prices every timing model in one pass via Binding.TimeAll.
func (WeakLink) TimeAll(b *Binding, lats []Latencies) ([]Result, error) { return b.TimeAll(lats) }

// StreamTimeAll prices a gate stream directly (the SourceTimer
// capability) via the frontier kernel in stream.go.
func (WeakLink) StreamTimeAll(src circuit.Source, l *ti.Layout, lats []Latencies) ([]Result, StreamStats, error) {
	return StreamTimeAll(src, l, lats)
}

var (
	_ TimingBackend = WeakLink{}
	_ SourceTimer   = WeakLink{}
)
