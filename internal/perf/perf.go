// Package perf implements VelociTI's trapped-ion performance models (§IV of
// the paper).
//
// Two models are provided over a placed circuit (a gate list plus a
// ti.Layout):
//
//   - The serial baseline (Eq. 1–2): t_serial = q·δ + Γ with
//     Γ = w·α·γ + (p−w)·γ, where q and p are the 1- and 2-qubit gate
//     counts, w is Table I's "number of weak links used" during placement,
//     δ and γ the 1- and 2-qubit gate latencies, and α the weak-link
//     penalty factor. No parallelism is exploited; this is the
//     normalization baseline. (SerialTimePerGate additionally provides the
//     per-gate-charged worst case, which upper-bounds the parallel model.)
//
//   - The parallel model (§IV-C/D): gates become nodes of a directed graph
//     whose edges order consecutive gates sharing a qubit. An edge's weight
//     is the destination gate's latency, plus the source gate's latency when
//     the source is a start node (a gate with no predecessors). The
//     circuit's parallel execution time is the maximum-weight path — chains
//     whose gate sequences never meet at a weak link proceed concurrently.
//
// All times are microseconds, matching the paper's Table III units.
package perf

import (
	"fmt"
	"strconv"

	"velociti/internal/circuit"
	"velociti/internal/dag"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// Latencies is the timing configuration of Table III.
type Latencies struct {
	// OneQubit is δ, the latency of a 1-qubit gate in µs (paper: 1).
	OneQubit float64 `json:"one_qubit_us"`
	// TwoQubit is γ, the latency of an intra-chain 2-qubit gate in µs
	// (paper: 100).
	TwoQubit float64 `json:"two_qubit_us"`
	// WeakPenalty is α, the multiplicative penalty of a weak-link 2-qubit
	// gate (paper sweeps 2.0 down to 1.0).
	WeakPenalty float64 `json:"weak_penalty"`
}

// DefaultLatencies returns the paper's evaluation configuration
// (Table III): δ = 1 µs, γ = 100 µs, α = 2.
func DefaultLatencies() Latencies {
	return Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: 2}
}

// Validate reports an error when the latency configuration is not
// physically meaningful. α < 1 would make weak links faster than local
// gates and is rejected (α = 1 means no penalty).
func (l Latencies) Validate() error {
	if l.OneQubit < 0 {
		return verr.Inputf("perf: 1-qubit latency must be non-negative, got %g", l.OneQubit)
	}
	if l.TwoQubit <= 0 {
		return verr.Inputf("perf: 2-qubit latency must be positive, got %g", l.TwoQubit)
	}
	if l.WeakPenalty < 1 {
		return verr.Inputf("perf: weak-link penalty must be ≥ 1, got %g", l.WeakPenalty)
	}
	return nil
}

// CacheKey implements internal/cache.Keyer (structurally): a canonical
// fingerprint of the timing model. Floats are rendered with the shortest
// round-tripping decimal form, so models with equal field bit patterns —
// and only those — share a key.
func (l Latencies) CacheKey() string {
	return "δ=" + strconv.FormatFloat(l.OneQubit, 'g', -1, 64) +
		",γ=" + strconv.FormatFloat(l.TwoQubit, 'g', -1, 64) +
		",α=" + strconv.FormatFloat(l.WeakPenalty, 'g', -1, 64)
}

// GateLatency returns the execution latency in µs of gate g under layout l:
// δ for 1-qubit gates, γ for intra-chain 2-qubit gates, and α·γ for any
// cross-chain (weak-link) 2-qubit gate. The penalty is flat — Eq. 2 charges
// every weak gate exactly α·γ regardless of how many chains apart its
// operands sit, which is what makes the paper's reported chain-length and
// α sensitivities come out (a per-hop charge would triple Figure 7's
// short-chain effect).
func (lat Latencies) GateLatency(g circuit.Gate, l *ti.Layout) float64 {
	if !g.IsTwoQubit() {
		return lat.OneQubit
	}
	if l.SameChain(g.Qubits[0], g.Qubits[1]) {
		return lat.TwoQubit
	}
	return lat.WeakPenalty * lat.TwoQubit
}

// WeakGates counts the number of 2-qubit gates in c whose operands sit on
// different chains under layout l — the gates the parallel model charges
// at α·γ.
func WeakGates(c *circuit.Circuit, l *ti.Layout) int {
	w := 0
	for _, g := range c.Gates() {
		if g.IsTwoQubit() && !l.SameChain(g.Qubits[0], g.Qubits[1]) {
			w++
		}
	}
	return w
}

// LinksUsed computes Table I's parameter w: the number of distinct weak
// links used during gate placement. Each cross-chain gate between
// directly linked chains uses exactly one link (the lowest-numbered link
// joining the pair, for determinism); gates between non-adjacent chains
// mark none. This keeps w ≤ min(#cross-chain gates, w_max), so Eq. 1–2's
// serial time never exceeds the per-gate worst case — and it is the
// calibration that reproduces the paper's serial times: the 64-qubit QFT
// on 16-ion chains (4 chains, all 4 links used) gives
// 4·α·γ + 4028·γ = 403.6 ms, the paper's exact Figure 6 value, and the
// six-application geometric mean lands on the paper's 69.3 ms.
func LinksUsed(c *circuit.Circuit, l *ti.Layout) int {
	used := make(map[int]bool)
	d := l.Device()
	for _, g := range c.Gates() {
		if !g.IsTwoQubit() {
			continue
		}
		ca, cb := l.ChainOf(g.Qubits[0]), l.ChainOf(g.Qubits[1])
		if ca == cb {
			continue
		}
		for _, wl := range d.WeakLinks() {
			if (wl.A.Chain == ca && wl.B.Chain == cb) || (wl.A.Chain == cb && wl.B.Chain == ca) {
				used[wl.ID] = true
				break
			}
		}
	}
	return len(used)
}

// SerialTime evaluates the serial baseline model (Eq. 1–2) for a placed
// circuit: t = q·δ + w·α·γ + (p−w)·γ with w = LinksUsed — the number of
// weak links used, per Table I. w is clamped to p so the degenerate case
// of fewer gates than touched links stays well-formed.
//
// Note that Eq. 1–2 is NOT an upper bound on the parallel model, so a
// reported serial/parallel "speedup" below 1× is legitimate model
// behavior, not a bug. The Γ term charges the α·γ weak-link penalty only
// w times — once per distinct link — while the parallel model charges
// every cross-chain gate individually at α·γ. A workload with many
// cross-chain gates but little intrinsic parallelism (Bernstein–Vazirani
// is the canonical case: its oracle CXs all target one ancilla, so its
// dependency chain is as long as the gate list) pays ~p·α·γ on the
// critical path against a serial estimate of only w·α·γ + (p−w)·γ, and
// the ratio drops below 1. SerialTimePerGate is the variant that charges
// every gate physically and therefore IS a true upper bound on the
// parallel time (a property test pins this).
func SerialTime(c *circuit.Circuit, l *ti.Layout, lat Latencies) float64 {
	q := c.NumOneQubitGates()
	p := c.NumTwoQubitGates()
	w := LinksUsed(c, l)
	if w > p {
		w = p
	}
	return SerialTimeFromCounts(q, p, w, lat)
}

// SerialTimePerGate is the physical worst case: every gate back to back
// with each cross-chain gate individually charged α·γ. Unlike Eq. 1–2 it
// is a true upper bound on the parallel model (a property test pins this).
func SerialTimePerGate(c *circuit.Circuit, l *ti.Layout, lat Latencies) float64 {
	var total float64
	for _, g := range c.Gates() {
		total += lat.GateLatency(g, l)
	}
	return total
}

// SerialTimeFromCounts evaluates Eq. 1–2 directly from the abstract
// parameters of Table I, without a concrete circuit: q 1-qubit gates, p
// 2-qubit gates of which w cross weak links.
func SerialTimeFromCounts(q, p, w int, lat Latencies) float64 {
	gamma := float64(w)*lat.WeakPenalty*lat.TwoQubit + float64(p-w)*lat.TwoQubit
	return float64(q)*lat.OneQubit + gamma
}

// BuildGateGraph constructs the paper's directed-graph representation of a
// placed circuit (§IV-C, Figure 3). Node i corresponds to gate i of c and
// carries its SSA label ("q3q4.2"). For every pair of consecutive gates
// (a, b) sharing a qubit there is an edge a→b weighted with b's latency,
// plus a's latency when a is a start node.
func BuildGateGraph(c *circuit.Circuit, l *ti.Layout, lat Latencies) *dag.Graph {
	g := dag.New()
	labels := c.Labels()
	for i := range c.Gates() {
		g.AddNode(labels[i])
	}
	edges := c.DependencyEdges()
	isStart := make([]bool, c.NumGates())
	for i := range isStart {
		isStart[i] = true
	}
	for _, e := range edges {
		isStart[e[1]] = false
	}
	for _, e := range edges {
		w := lat.GateLatency(c.Gate(e[1]), l)
		if isStart[e[0]] {
			w += lat.GateLatency(c.Gate(e[0]), l)
		}
		g.AddEdge(e[0], e[1], w)
	}
	return g
}

// ParallelTime evaluates the parallel model: the finish time of the last
// gate when every gate starts as soon as all gates it depends on have
// finished. It is computed by dynamic programming over the dependency DAG
// (finish(g) = latency(g) + max over predecessors' finish), which equals
// the longest weighted path in BuildGateGraph's representation — a property
// the test suite checks — while also covering gates with no edges at all.
// An empty circuit takes zero time.
func ParallelTime(c *circuit.Circuit, l *ti.Layout, lat Latencies) float64 {
	n := c.NumGates()
	if n == 0 {
		return 0
	}
	finish := make([]float64, n)
	// Gates are in program order, and dependencies only point backwards,
	// so a single left-to-right pass is a valid topological traversal.
	last := make([]int, c.NumQubits())
	for i := range last {
		last[i] = -1
	}
	total := 0.0
	for _, g := range c.Gates() {
		ready := 0.0
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 && finish[p] > ready {
				ready = finish[p]
			}
		}
		finish[g.ID] = ready + lat.GateLatency(g, l)
		for _, q := range g.Qubits {
			last[q] = g.ID
		}
		if finish[g.ID] > total {
			total = finish[g.ID]
		}
	}
	return total
}

// ParallelTimeFunc evaluates the parallel model under an arbitrary
// per-gate latency function instead of the standard Latencies — the hook
// alternative communication substrates (e.g. internal/shuttle's ion
// transport) plug their cost models into.
func ParallelTimeFunc(c *circuit.Circuit, latencyOf func(circuit.Gate) float64) float64 {
	n := c.NumGates()
	if n == 0 {
		return 0
	}
	finish := make([]float64, n)
	last := make([]int, c.NumQubits())
	for i := range last {
		last[i] = -1
	}
	total := 0.0
	for _, g := range c.Gates() {
		ready := 0.0
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 && finish[p] > ready {
				ready = finish[p]
			}
		}
		finish[g.ID] = ready + latencyOf(g)
		for _, q := range g.Qubits {
			last[q] = g.ID
		}
		if finish[g.ID] > total {
			total = finish[g.ID]
		}
	}
	return total
}

// SerialTimeFunc sums an arbitrary per-gate latency function — the
// back-to-back baseline for alternative communication substrates.
func SerialTimeFunc(c *circuit.Circuit, latencyOf func(circuit.Gate) float64) float64 {
	var total float64
	for _, g := range c.Gates() {
		total += latencyOf(g)
	}
	return total
}

// Result bundles the outcome of evaluating both models on one placed
// circuit.
type Result struct {
	// SerialMicros is the Eq. 1–2 baseline time in µs (w = links used).
	SerialMicros float64 `json:"serial_us"`
	// SerialPerGateMicros is the per-gate-charged serial worst case in µs.
	SerialPerGateMicros float64 `json:"serial_per_gate_us"`
	// ParallelMicros is the parallel-model time in µs.
	ParallelMicros float64 `json:"parallel_us"`
	// WeakGates is the number of cross-chain 2-qubit gates.
	WeakGates int `json:"weak_gates"`
	// LinksUsed is Table I's w: distinct weak links used by placement.
	LinksUsed int `json:"links_used"`
	// CriticalPath is the SSA labels of the gates on one longest path,
	// in execution order.
	CriticalPath []string `json:"critical_path,omitempty"`
}

// Speedup returns serial time over parallel time.
func (r Result) Speedup() float64 {
	if r.ParallelMicros == 0 {
		if r.SerialMicros == 0 {
			return 1
		}
		return 0
	}
	return r.SerialMicros / r.ParallelMicros
}

// Evaluate runs both performance models on a placed circuit and extracts
// the critical path.
func Evaluate(c *circuit.Circuit, l *ti.Layout, lat Latencies) (Result, error) {
	if err := lat.Validate(); err != nil {
		return Result{}, err
	}
	if c.NumQubits() > l.NumQubits() {
		return Result{}, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	res := Result{
		SerialMicros:        SerialTime(c, l, lat),
		SerialPerGateMicros: SerialTimePerGate(c, l, lat),
		ParallelMicros:      ParallelTime(c, l, lat),
		WeakGates:           WeakGates(c, l),
		LinksUsed:           LinksUsed(c, l),
	}
	res.CriticalPath = CriticalPath(c, l, lat)
	return res, nil
}

// CriticalPath returns the SSA labels of the gates along one
// maximum-latency dependency chain, in execution order. Returns nil for an
// empty circuit.
func CriticalPath(c *circuit.Circuit, l *ti.Layout, lat Latencies) []string {
	n := c.NumGates()
	if n == 0 {
		return nil
	}
	finish := make([]float64, n)
	prev := make([]int, n)
	last := make([]int, c.NumQubits())
	for i := range last {
		last[i] = -1
	}
	best := 0
	for _, g := range c.Gates() {
		ready := 0.0
		prev[g.ID] = -1
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 && finish[p] > ready {
				ready = finish[p]
				prev[g.ID] = p
			}
		}
		finish[g.ID] = ready + lat.GateLatency(g, l)
		for _, q := range g.Qubits {
			last[q] = g.ID
		}
		if finish[g.ID] > finish[best] {
			best = g.ID
		}
	}
	labels := c.Labels()
	var rev []string
	for at := best; at != -1; at = prev[at] {
		rev = append(rev, labels[at])
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// ChainUtilization reports, per chain, the fraction of the parallel
// execution window spent executing gates with at least one operand on that
// chain. A weak-link gate occupies both chains it touches. Utilization of
// an unused chain is 0; values can reach 1.0 for a fully busy chain.
func ChainUtilization(c *circuit.Circuit, l *ti.Layout, lat Latencies) []float64 {
	total := ParallelTime(c, l, lat)
	busy := make([]float64, l.Device().NumChains())
	if total == 0 {
		return busy
	}
	for _, g := range c.Gates() {
		d := lat.GateLatency(g, l)
		seen := make(map[int]bool, 2)
		for _, q := range g.Qubits {
			ch := l.ChainOf(q)
			if !seen[ch] {
				seen[ch] = true
				busy[ch] += d
			}
		}
	}
	for i := range busy {
		busy[i] /= total
		if busy[i] > 1 {
			busy[i] = 1
		}
	}
	return busy
}
