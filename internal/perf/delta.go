package perf

// This file exposes the incremental-rebind side of the delta-evaluation
// stack: a DeltaEval wraps one circuit's Evaluator plus one mutable
// qubit-to-chain assignment, and prices qubit swaps by updating only the
// CSR edge weights touching the swapped qubits' gates, then refreshing the
// affected cone through dag.Delta. A simulated-annealing placer evaluates
// thousands of candidate layouts per trial; each candidate differs from
// the previous by one swap, so the delta path does O(gates-per-qubit) work
// where a full evaluation walks the whole DAG.
//
// The objective DeltaEval maintains is the dependency DAG's longest path
// under a per-gate latency of the form
//
//	latency(g) = base[class(g)] + hops(g)·perHop
//
// which a timing backend supplies through the optional DeltaWeigher
// capability. For the weak-link backend this is exactly the paper's model
// (perHop = 0, weak gates at α·γ — Evaluator.LongestPath bit for bit). For
// the shuttle backend it is the contention-free transport cost (split +
// per-hop move + merge + recool + local γ): junction contention is a
// sequence-dependent quantity no static edge weight can carry, so the
// delta objective is a search surrogate there — final reported results are
// always re-priced by the full backend at the Bind/Time seam.

import (
	"fmt"

	"velociti/internal/dag"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// DeltaWeigher is the optional TimingBackend capability behind incremental
// re-binding: a backend that can express its per-gate latency as a pure
// function of gate class and chain-hop count supports delta evaluation.
type DeltaWeigher interface {
	// DeltaWeights returns the per-class base latencies (indexed by
	// GateClass) and the per-hop surcharge applied to ClassTwoQWeak gates
	// under lat. Backends whose cross-chain cost is hop-independent return
	// perHop = 0.
	DeltaWeights(lat Latencies) (base [NumGateClasses]float64, perHop float64, err error)
}

// DeltaWeights implements DeltaWeigher: the paper's model prices classes at
// δ / γ / α·γ with no hop dependence, so the delta objective equals
// Evaluator.LongestPath exactly.
func (WeakLink) DeltaWeights(lat Latencies) ([NumGateClasses]float64, float64, error) {
	if err := lat.Validate(); err != nil {
		return [NumGateClasses]float64{}, 0, err
	}
	return classLatencies(lat), 0, nil
}

// DeltaEval incrementally prices qubit swaps against one circuit. It is
// stateful (it owns a mutable qubit-to-chain assignment seeded from the
// initial layout) and not safe for concurrent use. Construct one per
// search, mutate it through Swap, read the objective through Cost, and
// materialize the final assignment through Layout.
type DeltaEval struct {
	ev  *Evaluator
	lat Latencies

	classBase [NumGateClasses]float64
	perHop    float64

	device    *ti.Device
	nc        int
	chainDist []int32 // nc×nc chain-hop matrix; -1 = disconnected
	chainOf   []int32 // per layout qubit, mutated by Swap

	// incHeads/incGates is the per-qubit incidence CSR over 2-qubit gates
	// (1-qubit latencies never depend on the layout). Sized over layout
	// qubits: swaps may move idle qubits too.
	incHeads []int32
	incGates []int32

	latency []float64 // current per-gate latency
	latSum  float64   // running Σ latency, updated per repriced gate
	edgeSrc []int32   // source gate of each CSR edge
	delta   *dag.Delta

	touched []int32   // scratch: gates whose latency changed in one Swap
	prevLat []float64 // scratch: their pre-swap latencies, for rollback
	changed []int32   // scratch: edge indices changed in one Swap
	seen    []int32   // per-gate epoch marks deduping touched
	epoch   int32

	fullScratch dag.Scratch // FullCost working memory
	fullLatency []float64
	fullWeights []float64
}

// NewDeltaEval builds the incremental evaluator for ev's circuit starting
// from layout l, pricing gates with backend's DeltaWeights under lat. It
// errors when the backend does not support delta evaluation, when lat is
// invalid, or when a cross-chain gate spans disconnected chains.
func NewDeltaEval(ev *Evaluator, l *ti.Layout, backend TimingBackend, lat Latencies) (*DeltaEval, error) {
	dw, ok := backend.(DeltaWeigher)
	if !ok {
		return nil, verr.Inputf("perf: timing backend %q does not support delta evaluation", backend.Name())
	}
	base, perHop, err := dw.DeltaWeights(lat)
	if err != nil {
		return nil, err
	}
	if ev.c.NumQubits() > l.NumQubits() {
		return nil, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", ev.c.NumQubits(), l.NumQubits())
	}
	ev.ensureCSR()
	d := &DeltaEval{
		ev:        ev,
		lat:       lat,
		classBase: base,
		perHop:    perHop,
		device:    l.Device(),
	}
	d.nc = d.device.NumChains()
	d.chainDist = d.device.ChainDistances()
	nq := l.NumQubits()
	d.chainOf = make([]int32, nq)
	for q := 0; q < nq; q++ {
		d.chainOf[q] = int32(l.ChainOf(q))
	}
	// Incidence CSR over 2-qubit gates.
	d.incHeads = make([]int32, nq+1)
	for i := 0; i < ev.n; i++ {
		if ev.twoQ[i] {
			d.incHeads[ev.qa[i]+1]++
			d.incHeads[ev.qb[i]+1]++
		}
	}
	for q := 0; q < nq; q++ {
		d.incHeads[q+1] += d.incHeads[q]
	}
	d.incGates = make([]int32, d.incHeads[nq])
	cursor := make([]int32, nq)
	for i := 0; i < ev.n; i++ {
		if !ev.twoQ[i] {
			continue
		}
		for _, q := range [2]int32{ev.qa[i], ev.qb[i]} {
			d.incGates[d.incHeads[q]+cursor[q]] = int32(i)
			cursor[q]++
		}
	}
	d.edgeSrc = make([]int32, len(ev.targets))
	for u := 0; u < ev.n; u++ {
		for e := ev.heads[u]; e < ev.heads[u+1]; e++ {
			d.edgeSrc[e] = int32(u)
		}
	}
	d.seen = make([]int32, ev.n)
	// Initial full pricing: per-gate latencies, edge weights, then the
	// delta kernel over a copy of the weights (dag.Delta takes ownership).
	d.latency = make([]float64, ev.n)
	if err := d.fillLatencies(d.latency); err != nil {
		return nil, err
	}
	for _, w := range d.latency {
		d.latSum += w
	}
	weights := make([]float64, len(ev.targets))
	d.fillWeights(weights, d.latency)
	d.delta, err = dag.NewDelta(dag.CSR{
		Heads:   ev.heads,
		Targets: ev.targets,
		Weights: weights,
		Forward: true,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// gateLatency prices gate i under the current chain assignment.
func (d *DeltaEval) gateLatency(i int32) (float64, error) {
	if !d.ev.twoQ[i] {
		return d.classBase[ClassOneQ], nil
	}
	ca, cb := d.chainOf[d.ev.qa[i]], d.chainOf[d.ev.qb[i]]
	if ca == cb {
		return d.classBase[ClassTwoQIntra], nil
	}
	h := d.chainDist[ca*int32(d.nc)+cb]
	if h < 0 {
		return 0, verr.Inputf("perf: gate %d spans disconnected chains %d and %d", i, ca, cb)
	}
	return d.classBase[ClassTwoQWeak] + float64(h)*d.perHop, nil
}

// fillLatencies prices every gate into dst.
func (d *DeltaEval) fillLatencies(dst []float64) error {
	for i := int32(0); i < int32(d.ev.n); i++ {
		w, err := d.gateLatency(i)
		if err != nil {
			return err
		}
		dst[i] = w
	}
	return nil
}

// fillWeights applies the Evaluator.LongestPath edge-weight formula: an
// edge u→v weighs latency[v], plus latency[u] when u is a start node.
func (d *DeltaEval) fillWeights(dst, latency []float64) {
	ev := d.ev
	for u := 0; u < ev.n; u++ {
		for e := ev.heads[u]; e < ev.heads[u+1]; e++ {
			w := latency[ev.targets[e]]
			if ev.isStart[u] {
				w += latency[u]
			}
			dst[e] = w
		}
	}
}

// NumQubits returns the number of placed qubits swaps may act on.
func (d *DeltaEval) NumQubits() int { return len(d.chainOf) }

// ChainOf returns qubit q's current chain.
func (d *DeltaEval) ChainOf(q int) int { return int(d.chainOf[q]) }

// SameChain reports whether qubits a and b currently share a chain.
func (d *DeltaEval) SameChain(a, b int) bool { return d.chainOf[a] == d.chainOf[b] }

// ChainAssignments copies the current qubit-to-chain assignment into dst
// (grown as needed) and returns it.
func (d *DeltaEval) ChainAssignments(dst []int32) []int32 {
	dst = append(dst[:0], d.chainOf...)
	return dst
}

// Swap exchanges the chain assignments of qubits q1 and q2 and updates the
// edge weights of every gate whose latency changed, returning the changed
// edge indices (valid until the next Swap; may be empty when the swap is a
// within-chain no-op). The objective is refreshed lazily: call Cost. Swap
// is its own inverse — Swap(a,b) followed by Swap(a,b) restores the
// assignment exactly.
func (d *DeltaEval) Swap(q1, q2 int) ([]int32, error) {
	n := len(d.chainOf)
	if q1 < 0 || q1 >= n || q2 < 0 || q2 >= n {
		return nil, verr.Inputf("perf: swap qubits (%d, %d) out of range [0, %d)", q1, q2, n)
	}
	if q1 == q2 {
		return nil, verr.Inputf("perf: swap requires distinct qubits, got %d twice", q1)
	}
	d.chainOf[q1], d.chainOf[q2] = d.chainOf[q2], d.chainOf[q1]
	d.changed = d.changed[:0]
	if d.chainOf[q1] == d.chainOf[q2] {
		return d.changed, nil // same chain: no gate class or hop count moved
	}
	// Phase 1: reprice every 2-qubit gate touching either qubit; collect
	// the ones whose latency actually changed. A gate touching both qubits
	// is visited once (epoch marks) and keeps its latency (both operands
	// moved together), so it drops out at the != check.
	d.epoch++
	d.touched = d.touched[:0]
	d.prevLat = d.prevLat[:0]
	sumBefore := d.latSum
	for _, q := range [2]int{q1, q2} {
		if q >= d.ev.c.NumQubits() {
			continue // idle qubit: no gates to reprice
		}
		for _, g := range d.incGates[d.incHeads[q]:d.incHeads[q+1]] {
			if d.seen[g] == d.epoch {
				continue
			}
			d.seen[g] = d.epoch
			w, err := d.gateLatency(g)
			if err != nil {
				// Roll back the assignment and the latencies already
				// repriced this phase so the evaluator stays usable.
				d.chainOf[q1], d.chainOf[q2] = d.chainOf[q2], d.chainOf[q1]
				for k, t := range d.touched {
					d.latency[t] = d.prevLat[k]
				}
				d.latSum = sumBefore
				return nil, err
			}
			if w != d.latency[g] {
				d.touched = append(d.touched, g)
				d.prevLat = append(d.prevLat, d.latency[g])
				d.latSum += w - d.latency[g]
				d.latency[g] = w
			}
		}
	}
	// Phase 2: recompute the weights of every edge incident to a repriced
	// gate — its in-edges carry its latency as the target term, and its
	// out-edges carry it as the start-node source term. Running after all
	// latencies settled means each recomputation reads final values, and
	// an edge between two repriced gates is simply recomputed twice with
	// the second pass finding nothing to change.
	for _, g := range d.touched {
		for _, e := range d.delta.InEdges(g) {
			d.updateEdge(e)
		}
		if d.ev.isStart[g] {
			for e := d.ev.heads[g]; e < d.ev.heads[g+1]; e++ {
				d.updateEdge(e)
			}
		}
	}
	return d.changed, nil
}

// updateEdge recomputes edge e's weight from the current latencies and
// routes a real change through the delta kernel.
func (d *DeltaEval) updateEdge(e int32) {
	w := d.latency[d.ev.targets[e]]
	if u := d.edgeSrc[e]; d.ev.isStart[u] {
		w += d.latency[u]
	}
	if w != d.delta.Weight(e) {
		d.delta.SetWeight(e, w)
		d.changed = append(d.changed, e)
	}
}

// Cost refreshes pending changes and returns the current objective: the
// dependency DAG's longest path under the backend's delta weights. For the
// weak-link backend this equals Evaluator.LongestPath on the materialized
// layout bit for bit.
func (d *DeltaEval) Cost() float64 { return d.delta.Refresh() }

// LatencySum returns the running sum of every gate's current latency — the
// serial-time analogue of Cost, maintained incrementally across Swaps. The
// longest-path objective is a max over many paths and plateaus on regular
// circuits (most single swaps leave every tied critical path untouched);
// the annealer uses this sum as the plateau tie-breaker so zero-ΔCost moves
// still drift toward cheaper layouts. Incremental accumulation can drift
// from the from-scratch sum in the last bits; the same sequence of Swaps
// always yields the same value, which is all a tie-breaker needs.
func (d *DeltaEval) LatencySum() float64 { return d.latSum }

// FullCost prices the current assignment from scratch — fresh latencies,
// fresh edge weights, a full kernel pass — sharing no incremental state
// with Cost beyond the chain assignment itself. It is the bit-exactness
// oracle for Cost and the "place-then-full-evaluate" legacy path the
// annealer benchmarks against.
func (d *DeltaEval) FullCost() (float64, error) {
	ev := d.ev
	if cap(d.fullLatency) < ev.n {
		d.fullLatency = make([]float64, ev.n)
	}
	d.fullLatency = d.fullLatency[:ev.n]
	if err := d.fillLatencies(d.fullLatency); err != nil {
		return 0, err
	}
	if cap(d.fullWeights) < len(ev.targets) {
		d.fullWeights = make([]float64, len(ev.targets))
	}
	d.fullWeights = d.fullWeights[:len(ev.targets)]
	d.fillWeights(d.fullWeights, d.fullLatency)
	csr := dag.CSR{Heads: ev.heads, Targets: ev.targets, Weights: d.fullWeights, Forward: true}
	best, err := csr.LongestPath(&d.fullScratch)
	if err != nil {
		// The cached CSR is forward-edged by construction; a cycle is
		// impossible.
		panic(fmt.Sprintf("perf: dependency CSR reported cycle: %v", err))
	}
	return best, nil
}

// SetConeLimit forwards to the delta kernel's full-recompute fallback
// budget (see dag.Delta.SetConeLimit).
func (d *DeltaEval) SetConeLimit(limit int) { d.delta.SetConeLimit(limit) }

// FullRecomputes reports how many Cost refreshes fell back to a full
// kernel pass.
func (d *DeltaEval) FullRecomputes() int { return d.delta.FullRecomputes() }

// Layout materializes the current chain assignment as a ti.Layout. Within
// each chain, qubits appear in ascending id order; gate classes and hop
// counts depend only on chain membership, so the materialized layout
// prices identically to the assignment DeltaEval scored.
func (d *DeltaEval) Layout() (*ti.Layout, error) {
	chains := make([][]int, d.nc)
	counts := make([]int, d.nc)
	for _, c := range d.chainOf {
		counts[c]++
	}
	for c := 0; c < d.nc; c++ {
		chains[c] = make([]int, 0, counts[c])
	}
	for q, c := range d.chainOf {
		chains[c] = append(chains[c], q)
	}
	return ti.NewLayout(d.device, chains)
}
