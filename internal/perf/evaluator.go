package perf

// This file kernelizes the framework's hot path. Every data point in the
// paper's evaluation averages 35 randomized trials, and each trial needs
// the parallel model over the gate dependency graph. The generic path
// (BuildGateGraph + dag.Graph.LongestPath, or the per-call slices of
// ParallelTime/Evaluate) allocates maps and slices on every evaluation; an
// Evaluator instead flattens the circuit's dependency structure once into
// CSR-style int32 arrays and evaluates layouts against it using
// sync.Pool-backed scratch memory, so repeated trials over the same circuit
// allocate (almost) nothing. Results are exactly equal to the generic path
// — the test suite pins equivalence property-style.

import (
	"fmt"
	"sync"

	"velociti/internal/circuit"
	"velociti/internal/dag"
	"velociti/internal/ti"
)

// Evaluator caches the layout-independent structure of one circuit — the
// dependency CSR of §IV-C's gate graph, operand tables, gate counts, and
// SSA labels — and evaluates the performance models against layouts over
// those flat arrays. An Evaluator is immutable after construction and safe
// for concurrent use; worker-pool trial runners share one per circuit.
type Evaluator struct {
	c *circuit.Circuit
	n int

	// heads/targets is the successor CSR of the dependency edges
	// (circuit.DependencyEdges semantics): an edge u→v means gate v is the
	// next gate after u touching one of u's qubits. Gates are emitted in
	// program order, so every edge points forward.
	heads   []int32
	targets []int32
	// isStart[i] reports gate i has no predecessor (a paper "start node").
	isStart []bool
	// twoQ[i] reports gate i acts on two qubits; qa/qb are its operands
	// (qb == -1 for 1-qubit gates).
	twoQ   []bool
	qa, qb []int32

	oneQGates, twoQGates int

	// buildLast/buildCursor are construction temporaries kept on the
	// struct so a recycled evaluator's rebuild is allocation-free. They
	// are never read after construction returns.
	buildLast, buildCursor []int32

	// once guards the lazy stages: the CSR, because the sweep kernels
	// (Binding.TimeAll and friends) price gates off the operand tables
	// alone, so heads/targets/isStart are only materialized when a
	// CSR-walking evaluation (ParallelTime, LongestPath, NumEdges) first
	// asks for them; and the SSA labels. One heap object per build —
	// build resets it by pointer swap, since copying a sync.Once would
	// trip the copylocks vet.
	once   *evalOnce
	labels []string
}

// evalOnce bundles the evaluator's lazy-stage guards into one allocation.
type evalOnce struct {
	csr    sync.Once
	labels sync.Once
}

// evalScratch is the pooled working memory of one evaluation.
type evalScratch struct {
	finish  []float64
	prev    []int32
	last    []int32
	latency []float64
	weights []float64
	dag     dag.Scratch
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

func (s *evalScratch) grow(n int) {
	if cap(s.finish) < n {
		s.finish = make([]float64, n)
		s.prev = make([]int32, n)
		s.latency = make([]float64, n)
	}
	s.finish = s.finish[:n]
	s.prev = s.prev[:n]
	s.latency = s.latency[:n]
}

// growLast returns the per-qubit last-gate buffer reset to -1.
func (s *evalScratch) growLast(numQubits int) []int32 {
	if cap(s.last) < numQubits {
		s.last = make([]int32, numQubits)
	}
	s.last = s.last[:numQubits]
	for i := range s.last {
		s.last[i] = -1
	}
	return s.last
}

// NewEvaluator flattens the circuit's dependency structure. The circuit
// must not be mutated while the evaluator is in use.
func NewEvaluator(c *circuit.Circuit) *Evaluator {
	return (&Evaluator{}).build(c)
}

// evaluatorPool holds retired evaluators whose flat arrays NewEvaluatorScratch
// rebuilds in place. Only evaluators explicitly handed back through
// RecycleEvaluator ever land here.
var evaluatorPool sync.Pool

// NewEvaluatorScratch is NewEvaluator, but reuses a recycled evaluator's
// storage when one is available. The result is indistinguishable from a
// fresh NewEvaluator.
func NewEvaluatorScratch(c *circuit.Circuit) *Evaluator {
	if e, _ := evaluatorPool.Get().(*Evaluator); e != nil {
		return e.build(c)
	}
	return NewEvaluator(c)
}

// RecycleEvaluator retires e's storage for reuse by NewEvaluatorScratch.
// The caller must own every live reference to e, including any Binding
// built from it — a later NewEvaluatorScratch rebuilds the arrays in
// place. Trial loops that evaluate and discard use this to stay
// allocation-flat; cached evaluators must never be recycled.
func RecycleEvaluator(e *Evaluator) {
	if e == nil {
		return
	}
	evaluatorPool.Put(e)
}

// growInt32 returns s resized to n without clearing retained elements.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// build (re)constructs the evaluator for c, reusing whatever array capacity
// the struct already carries. Only the operand tables and gate counts are
// filled here; the dependency CSR is deferred to ensureCSR, since the
// binding/pricing path never walks it.
func (e *Evaluator) build(c *circuit.Circuit) *Evaluator {
	n := c.NumGates()
	e.c = c
	e.n = n
	e.oneQGates, e.twoQGates = 0, 0
	e.once = new(evalOnce)
	e.labels = nil
	e.qa = growInt32(e.qa, n)
	e.qb = growInt32(e.qb, n)
	if cap(e.twoQ) < n {
		e.twoQ = make([]bool, n)
	}
	e.twoQ = e.twoQ[:n]
	gs := c.Gates()
	for i := range gs {
		g := &gs[i]
		id := int32(g.ID)
		e.qa[id] = int32(g.Qubits[0])
		e.qb[id] = -1
		e.twoQ[id] = false
		if g.IsTwoQubit() {
			e.twoQ[id] = true
			e.qb[id] = int32(g.Qubits[1])
			e.twoQGates++
		} else if len(g.Qubits) == 1 {
			e.oneQGates++
		}
	}
	return e
}

// ensureCSR materializes heads/targets/isStart on first use.
func (e *Evaluator) ensureCSR() { e.once.csr.Do(e.buildCSR) }

// buildCSR constructs the successor CSR and start-node flags from the
// operand tables build filled.
func (e *Evaluator) buildCSR() {
	n := e.n
	e.heads = growInt32(e.heads, n+1)
	for i := range e.heads {
		e.heads[i] = 0
	}
	if cap(e.isStart) < n {
		e.isStart = make([]bool, n)
	}
	e.isStart = e.isStart[:n]
	for i := range e.isStart {
		e.isStart[i] = true
	}
	e.buildLast = growInt32(e.buildLast, e.c.NumQubits())
	last := e.buildLast
	for i := range last {
		last[i] = -1
	}
	// First pass: per-source out-degrees (into heads, shifted by one for
	// the prefix sum) and start flags.
	for id := int32(0); id < int32(n); id++ {
		p0 := last[e.qa[id]]
		p1 := int32(-1)
		if e.qb[id] >= 0 {
			p1 = last[e.qb[id]]
		}
		if p0 >= 0 {
			e.heads[p0+1]++
			e.isStart[id] = false
		}
		if p1 >= 0 && p1 != p0 {
			e.heads[p1+1]++
			e.isStart[id] = false
		}
		last[e.qa[id]] = id
		if e.qb[id] >= 0 {
			last[e.qb[id]] = id
		}
	}
	for u := 0; u < n; u++ {
		e.heads[u+1] += e.heads[u]
	}
	e.targets = growInt32(e.targets, int(e.heads[n]))
	// Second pass: fill targets. Iterating gates in program order appends
	// ascending targets to each source's slot range, so the CSR comes out
	// sorted exactly like dag.Graph.Successors.
	e.buildCursor = growInt32(e.buildCursor, n)
	cursor := e.buildCursor
	for i := range cursor {
		cursor[i] = 0
	}
	for i := range last {
		last[i] = -1
	}
	for id := int32(0); id < int32(n); id++ {
		p0 := last[e.qa[id]]
		p1 := int32(-1)
		if e.qb[id] >= 0 {
			p1 = last[e.qb[id]]
		}
		if p0 >= 0 {
			e.targets[e.heads[p0]+cursor[p0]] = id
			cursor[p0]++
		}
		if p1 >= 0 && p1 != p0 {
			e.targets[e.heads[p1]+cursor[p1]] = id
			cursor[p1]++
		}
		last[e.qa[id]] = id
		if e.qb[id] >= 0 {
			last[e.qb[id]] = id
		}
	}
}

// Circuit returns the circuit this evaluator was built for.
func (e *Evaluator) Circuit() *circuit.Circuit { return e.c }

// NumEdges returns the number of dependency edges in the cached graph.
func (e *Evaluator) NumEdges() int {
	e.ensureCSR()
	return len(e.targets)
}

// gateLatencies fills dst[i] with gate i's latency under (l, lat) and
// returns the count of cross-chain 2-qubit gates.
func (e *Evaluator) gateLatencies(dst []float64, l *ti.Layout, lat Latencies) (weak int) {
	weakLat := lat.WeakPenalty * lat.TwoQubit
	for i := 0; i < e.n; i++ {
		if !e.twoQ[i] {
			dst[i] = lat.OneQubit
			continue
		}
		if l.SameChain(int(e.qa[i]), int(e.qb[i])) {
			dst[i] = lat.TwoQubit
		} else {
			dst[i] = weakLat
			weak++
		}
	}
	return weak
}

// ParallelTime evaluates the parallel model (the finish time of the last
// gate under ASAP scheduling) for one layout. It equals
// perf.ParallelTime(c, l, lat) exactly, with no per-call allocations.
func (e *Evaluator) ParallelTime(l *ti.Layout, lat Latencies) float64 {
	if e.n == 0 {
		return 0
	}
	e.ensureCSR()
	s := evalPool.Get().(*evalScratch)
	s.grow(e.n)
	e.gateLatencies(s.latency, l, lat)
	total := e.parallelDP(s)
	evalPool.Put(s)
	return total
}

// parallelDP runs the finish-time dynamic program over the cached CSR.
// s.latency must already be filled; s.finish is used as the ready/finish
// buffer. Returns the makespan.
func (e *Evaluator) parallelDP(s *evalScratch) float64 {
	finish := s.finish
	for i := range finish {
		finish[i] = 0
	}
	total := 0.0
	for u := 0; u < e.n; u++ {
		f := finish[u] + s.latency[u]
		finish[u] = f
		if f > total {
			total = f
		}
		for i := e.heads[u]; i < e.heads[u+1]; i++ {
			v := e.targets[i]
			if f > finish[v] {
				finish[v] = f
			}
		}
	}
	return total
}

// LongestPath computes the maximum-weight path of §IV-C's gate graph — the
// same quantity as BuildGateGraph(c, l, lat) followed by
// dag.Graph.LongestPath — by filling edge weights over the cached CSR and
// running internal/dag's index-based kernel.
func (e *Evaluator) LongestPath(l *ti.Layout, lat Latencies) float64 {
	if e.n == 0 {
		return 0
	}
	e.ensureCSR()
	s := evalPool.Get().(*evalScratch)
	s.grow(e.n)
	e.gateLatencies(s.latency, l, lat)
	if cap(s.weights) < len(e.targets) {
		s.weights = make([]float64, len(e.targets))
	}
	s.weights = s.weights[:len(e.targets)]
	for u := 0; u < e.n; u++ {
		for i := e.heads[u]; i < e.heads[u+1]; i++ {
			w := s.latency[e.targets[i]]
			if e.isStart[u] {
				w += s.latency[u]
			}
			s.weights[i] = w
		}
	}
	csr := dag.CSR{Heads: e.heads, Targets: e.targets, Weights: s.weights, Forward: true}
	length, err := csr.LongestPath(&s.dag)
	evalPool.Put(s)
	if err != nil {
		// The cached CSR is forward-edged by construction; a cycle is
		// impossible.
		panic(fmt.Sprintf("perf: dependency CSR reported cycle: %v", err))
	}
	return length
}

// Labels returns the circuit's SSA gate labels, computed once and cached.
func (e *Evaluator) Labels() []string {
	e.once.labels.Do(func() { e.labels = e.c.Labels() })
	return e.labels
}

// Evaluate runs both performance models for one layout. The Result is
// exactly equal (field for field, critical path included) to
// perf.Evaluate(c, l, lat), computed in two passes over flat arrays
// instead of seven over the gate list.
func (e *Evaluator) Evaluate(l *ti.Layout, lat Latencies) (Result, error) {
	if err := lat.Validate(); err != nil {
		return Result{}, err
	}
	if e.c.NumQubits() > l.NumQubits() {
		return Result{}, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", e.c.NumQubits(), l.NumQubits())
	}
	s := evalPool.Get().(*evalScratch)
	s.grow(e.n)

	// Pass 1: per-gate latencies, serial per-gate total, weak-gate count,
	// and the set of weak links used (Table I's w).
	weak := e.gateLatencies(s.latency, l, lat)
	serialPerGate := 0.0
	for _, d := range s.latency {
		serialPerGate += d
	}
	links := e.linksUsed(l)
	w := links
	if w > e.twoQGates {
		w = e.twoQGates
	}

	res := Result{
		SerialMicros:        SerialTimeFromCounts(e.oneQGates, e.twoQGates, w, lat),
		SerialPerGateMicros: serialPerGate,
		WeakGates:           weak,
		LinksUsed:           links,
	}

	// Pass 2: parallel-model DP with predecessor tracking for the
	// critical path. This pulls each gate's ready time from its operands'
	// last writers — exactly CriticalPath's traversal, so predecessor
	// tie-breaking (first operand wins on equal finish times) matches the
	// legacy path label for label.
	if e.n > 0 {
		finish, prev := s.finish, s.prev
		last := s.growLast(e.c.NumQubits())
		best := 0
		total := 0.0
		for i := 0; i < e.n; i++ {
			ready := 0.0
			prev[i] = -1
			if p := last[e.qa[i]]; p >= 0 && finish[p] > ready {
				ready = finish[p]
				prev[i] = p
			}
			if qb := e.qb[i]; qb >= 0 {
				if p := last[qb]; p >= 0 && finish[p] > ready {
					ready = finish[p]
					prev[i] = p
				}
			}
			f := ready + s.latency[i]
			finish[i] = f
			last[e.qa[i]] = int32(i)
			if qb := e.qb[i]; qb >= 0 {
				last[qb] = int32(i)
			}
			if f > finish[best] {
				best = i
			}
			if f > total {
				total = f
			}
		}
		res.ParallelMicros = total
		depth := 0
		for at := int32(best); at != -1; at = s.prev[at] {
			depth++
		}
		labels := e.Labels()
		path := make([]string, depth)
		for at := int32(best); at != -1; at = s.prev[at] {
			depth--
			path[depth] = labels[at]
		}
		res.CriticalPath = path
	}
	evalPool.Put(s)
	return res, nil
}

// linksUsed computes Table I's w over the cached operand tables: the
// number of distinct weak links marked by cross-chain gates between
// directly linked chains (the lowest-numbered link joining each pair),
// matching LinksUsed.
func (e *Evaluator) linksUsed(l *ti.Layout) int {
	d := l.Device()
	nc := d.NumChains()
	// pairLink[ca*nc+cb] is 1 + the id of the lowest-numbered link joining
	// the chain pair, 0 when none; a flat matrix beats a map for the chain
	// counts the framework sees (≤ a few dozen).
	pairLink := make([]int32, nc*nc)
	for i := len(d.WeakLinks()) - 1; i >= 0; i-- {
		wl := d.WeakLinks()[i]
		pairLink[wl.A.Chain*nc+wl.B.Chain] = int32(wl.ID) + 1
		pairLink[wl.B.Chain*nc+wl.A.Chain] = int32(wl.ID) + 1
	}
	used := make([]bool, d.MaxWeakLinks()+1)
	count := 0
	for i := 0; i < e.n; i++ {
		if !e.twoQ[i] {
			continue
		}
		ca, cb := l.ChainOf(int(e.qa[i])), l.ChainOf(int(e.qb[i]))
		if ca == cb {
			continue
		}
		if id := pairLink[ca*nc+cb]; id != 0 && !used[id-1] {
			used[id-1] = true
			count++
		}
	}
	return count
}
