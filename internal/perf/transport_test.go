package perf

// Tests for the shuttle transport pricing kernel: the zero-cost
// equivalence with the weak-link model at α = 1, the batched-lane
// bit-exactness contract, the junction-contention hand case, and the
// input-error boundaries (missing plan, bad costs, disconnected chains).

import (
	"math"
	"reflect"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

func transportBinding(t *testing.T, c *circuit.Circuit, l *ti.Layout) *Binding {
	t.Helper()
	b, err := NewEvaluator(c).Bind(l)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AttachTransport(l); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestZeroCostTransportEqualsWeakLinkAlphaOne pins the degenerate-shuttle
// equivalence the backend seam relies on: with every transport cost at
// zero, a cross-chain gate costs exactly the local γ — the weak-link
// model at α = 1 — and the kernel must reproduce that model bit for bit,
// critical path included, whatever α the input lats carry (transport
// replaces α, so it must never be read).
func TestZeroCostTransportEqualsWeakLinkAlphaOne(t *testing.T) {
	c := randCircuit(t, "zero-cost", 48, 60, 240, 11)
	l := testLayout(t, 48, 12)
	b := transportBinding(t, c, l)
	alphas := []float64{3.0, 2.0, 1.5, 1.0}
	lats := make([]Latencies, len(alphas))
	ones := make([]Latencies, len(alphas))
	for j, a := range alphas {
		lats[j] = DefaultLatencies()
		lats[j].WeakPenalty = a
		ones[j] = lats[j]
		ones[j].WeakPenalty = 1
	}
	got, err := b.TimeTransportAll(TransportCosts{}, lats)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.TimeAll(ones)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if !reflect.DeepEqual(got[j], want[j]) {
			t.Fatalf("lane %d (α=%g): zero-cost transport %+v != weak-link α=1 %+v", j, alphas[j], got[j], want[j])
		}
	}
}

// TestTimeTransportAllMatchesTimeTransport pins the batched contract:
// lane j of TimeTransportAll equals the single-model TimeTransport bit
// for bit at every lane count, including the busy-table interleaving.
func TestTimeTransportAllMatchesTimeTransport(t *testing.T) {
	c := randCircuit(t, "lanes", 40, 30, 200, 5)
	l := testLayout(t, 40, 8)
	b := transportBinding(t, c, l)
	costs := TransportCosts{SplitMicros: 80, MovePerHopMicros: 10, MergeMicros: 80, RecoolMicros: 100}
	alphas := []float64{2.0, 1.6, 1.2, 1.0}
	for lanes := 1; lanes <= len(alphas); lanes++ {
		lats := make([]Latencies, lanes)
		for j := 0; j < lanes; j++ {
			lats[j] = DefaultLatencies()
			lats[j].WeakPenalty = alphas[j]
			lats[j].TwoQubit = 100 + 10*float64(j) // vary γ so lanes truly differ
		}
		all, err := b.TimeTransportAll(costs, lats)
		if err != nil {
			t.Fatal(err)
		}
		for j, lat := range lats {
			one, err := b.TimeTransport(costs, lat)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(all[j], one) {
				t.Fatalf("lanes=%d lane %d: %+v != %+v", lanes, j, all[j], one)
			}
		}
	}
}

// TestTransportContentionHandCase checks the junction serialization on a
// device with a single weak-link segment: two data-independent cross-chain
// gates cannot move ions through the one segment concurrently, so the
// second transport waits for the first to clear.
func TestTransportContentionHandCase(t *testing.T) {
	d, err := ti.NewDevice(4, 2, ti.Line) // one segment between the two chains
	if err != nil {
		t.Fatal(err)
	}
	l := seqLayout(t, d, 8)
	c := circuit.New("contend", 8)
	c.CX(0, 4) // chain 0 ↔ chain 1
	c.CX(1, 5) // disjoint qubits, same segment
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	b := transportBinding(t, c, l)
	costs := TransportCosts{SplitMicros: 50, MovePerHopMicros: 10, MergeMicros: 40, RecoolMicros: 100}
	over := 200.0 // 50+10+40+100
	lat := DefaultLatencies()
	res, err := b.TimeTransport(costs, lat)
	if err != nil {
		t.Fatal(err)
	}
	// Gate 0: transport [0,200], gate ends 300. Gate 1: data-ready at 0
	// but the segment is busy until 200; transport [200,400], ends 500.
	if want := 2*over + lat.TwoQubit; res.ParallelMicros != want {
		t.Fatalf("contended parallel = %v, want %v", res.ParallelMicros, want)
	}
	// With free transport the two gates overlap fully.
	free, err := b.TimeTransport(TransportCosts{}, lat)
	if err != nil {
		t.Fatal(err)
	}
	if free.ParallelMicros != lat.TwoQubit {
		t.Fatalf("uncontended parallel = %v, want %v", free.ParallelMicros, lat.TwoQubit)
	}
}

// TestTimeTransportRequiresPlan: pricing without Prepare is a contract
// violation, reported as an error rather than a fabricated result.
func TestTimeTransportRequiresPlan(t *testing.T) {
	c := randCircuit(t, "no-plan", 16, 10, 30, 3)
	l := testLayout(t, 16, 8)
	b, err := NewEvaluator(c).Bind(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TimeTransport(TransportCosts{}, DefaultLatencies()); err == nil {
		t.Fatal("pricing without an attached transport plan should fail")
	}
}

// TestTransportCostsValidate rejects negative and NaN costs as typed
// input errors.
func TestTransportCostsValidate(t *testing.T) {
	bad := []TransportCosts{
		{SplitMicros: -1},
		{MovePerHopMicros: -0.5},
		{MergeMicros: math.NaN()},
		{RecoolMicros: math.Inf(-1)},
	}
	for i, costs := range bad {
		err := costs.Validate()
		if err == nil {
			t.Errorf("costs %d should be invalid", i)
			continue
		}
		if !verr.IsInput(err) {
			t.Errorf("costs %d: error should be input-kind, got %v", i, err)
		}
	}
	if err := (TransportCosts{}).Validate(); err != nil {
		t.Errorf("zero costs should be valid: %v", err)
	}
}

// TestAttachTransportDisconnected: a weak gate across disconnected chain
// groups has no shuttle path; AttachTransport must surface a typed input
// error, not invent a finite cost (the regression the linear-tape work
// fixed in Layout.Hops).
func TestAttachTransportDisconnected(t *testing.T) {
	// Chains {0,1} linked, chain 2 isolated.
	d, err := ti.NewDeviceLinks(4, 3, []ti.WeakLink{
		{A: ti.Port{Chain: 0, Side: ti.Right}, B: ti.Port{Chain: 1, Side: ti.Left}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := seqLayout(t, d, 12)
	c := circuit.New("disc", 12)
	c.CX(0, 8) // chain 0 ↔ chain 2: no path
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	b, err := NewEvaluator(c).Bind(l)
	if err != nil {
		t.Fatal(err)
	}
	err = b.AttachTransport(l)
	if err == nil {
		t.Fatal("disconnected chains should fail AttachTransport")
	}
	if !verr.IsInput(err) {
		t.Fatalf("error should be input-kind, got %v", err)
	}
}
