package perf

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/ti"
)

func TestTimelineFig3(t *testing.T) {
	c, l := fig3(t)
	lat := DefaultLatencies()
	tl, err := BuildTimeline(c, l, lat)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Intervals) != 6 {
		t.Fatalf("intervals = %d", len(tl.Intervals))
	}
	// Makespan must equal the parallel model: (1+α)γ + γ = 400.
	if tl.Makespan != 400 {
		t.Fatalf("makespan = %v, want 400", tl.Makespan)
	}
	// The three start gates begin at t=0.
	for _, id := range []int{0, 1, 2} {
		if tl.Intervals[id].Start != 0 {
			t.Errorf("gate %d start = %v, want 0", id, tl.Intervals[id].Start)
		}
	}
	// The weak-link gate (id 3) spans both chains and is marked weak.
	iv := tl.Intervals[3]
	if !iv.Weak || len(iv.Chains) != 2 {
		t.Fatalf("weak gate interval = %+v", iv)
	}
	if iv.Start != 100 || iv.Finish != 300 {
		t.Fatalf("weak gate runs [%v,%v], want [100,300]", iv.Start, iv.Finish)
	}
}

func TestTimelineMakespanEqualsParallelTime(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	lat := DefaultLatencies()
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.Intn(16)
		d, _ := ti.NewDevice(4, (n+3)/4, ti.Ring)
		chains := make([][]int, d.NumChains())
		for q := 0; q < n; q++ {
			chains[q/4] = append(chains[q/4], q)
		}
		l, _ := ti.NewLayout(d, chains)
		c := circuit.New("rand", n)
		for k := 0; k < r.Intn(40); k++ {
			if r.Intn(4) == 0 {
				c.X(r.Intn(n))
			} else {
				a, b := r.Intn(n), r.Intn(n)
				for b == a {
					b = r.Intn(n)
				}
				c.CX(a, b)
			}
		}
		tl, err := BuildTimeline(c, l, lat)
		if err != nil {
			t.Fatal(err)
		}
		if want := ParallelTime(c, l, lat); math.Abs(tl.Makespan-want) > 1e-9 {
			t.Fatalf("trial %d: makespan %v != parallel %v", trial, tl.Makespan, want)
		}
		// No two intervals sharing a qubit may overlap.
		for i, a := range tl.Intervals {
			for j := i + 1; j < len(tl.Intervals); j++ {
				b := tl.Intervals[j]
				shares := false
				for _, q := range c.Gate(a.GateID).Qubits {
					if c.Gate(b.GateID).Touches(q) {
						shares = true
					}
				}
				if shares && a.Start < b.Finish && b.Start < a.Finish {
					t.Fatalf("trial %d: overlapping gates %d and %d on shared qubit", trial, a.GateID, b.GateID)
				}
			}
		}
	}
}

func TestTimelineConcurrency(t *testing.T) {
	c, l := fig3(t)
	tl, err := BuildTimeline(c, l, DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	// Three start gates run simultaneously at t=0.
	if got := tl.Concurrency(); got != 3 {
		t.Fatalf("concurrency = %d, want 3", got)
	}
	// A fully serial ladder has concurrency 1.
	d, _ := ti.NewDevice(2, 1, ti.Ring)
	sl, _ := ti.NewLayout(d, [][]int{{0, 1}})
	sc := circuit.New("serial", 2)
	for i := 0; i < 5; i++ {
		sc.CX(0, 1)
	}
	stl, err := BuildTimeline(sc, sl, DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if stl.Concurrency() != 1 {
		t.Fatalf("serial ladder concurrency = %d", stl.Concurrency())
	}
}

func TestTimelineChainLanes(t *testing.T) {
	c, l := fig3(t)
	tl, _ := BuildTimeline(c, l, DefaultLatencies())
	lanes := tl.ChainLanes()
	if len(lanes) != 2 {
		t.Fatalf("lanes = %d", len(lanes))
	}
	// Chain 0 hosts gates q1q2, q3q4, q2q3 plus the weak gate; chain 1
	// hosts q6q7, q5q6 plus the weak gate.
	if len(lanes[0]) != 4 || len(lanes[1]) != 3 {
		t.Fatalf("lane sizes = %d/%d, want 4/3", len(lanes[0]), len(lanes[1]))
	}
	for _, lane := range lanes {
		for i := 1; i < len(lane); i++ {
			if lane[i].Start < lane[i-1].Start {
				t.Fatalf("lane not sorted by start")
			}
		}
	}
}

func TestTimelineGantt(t *testing.T) {
	c, l := fig3(t)
	tl, _ := BuildTimeline(c, l, DefaultLatencies())
	g := tl.Gantt(40)
	if !strings.Contains(g, "chain  0") || !strings.Contains(g, "chain  1") {
		t.Fatalf("gantt rows missing:\n%s", g)
	}
	if !strings.Contains(g, "W") {
		t.Fatalf("gantt should mark the weak-link gate:\n%s", g)
	}
	if !strings.Contains(g, "makespan 400.0") {
		t.Fatalf("gantt header missing makespan:\n%s", g)
	}
	// Zero-width request falls back to the default width.
	if len(strings.Split(tl.Gantt(0), "\n")[1]) < 80 {
		t.Fatalf("default width not applied")
	}
	empty := &Timeline{NumChains: 1}
	if !strings.Contains(empty.Gantt(10), "empty") {
		t.Fatalf("empty timeline rendering")
	}
}

func TestTimelineUtilization(t *testing.T) {
	c, l := fig3(t)
	tl, _ := BuildTimeline(c, l, DefaultLatencies())
	util := tl.Utilization()
	if len(util) != 2 {
		t.Fatalf("util = %v", util)
	}
	for ch, u := range util {
		if u <= 0 || u > 1 {
			t.Errorf("chain %d utilization %v out of (0,1]", ch, u)
		}
	}
	empty := &Timeline{NumChains: 2}
	for _, u := range empty.Utilization() {
		if u != 0 {
			t.Errorf("empty timeline utilization should be 0")
		}
	}
}

func TestTimelineValidation(t *testing.T) {
	c, l := fig3(t)
	if _, err := BuildTimeline(c, l, Latencies{WeakPenalty: 0}); err == nil {
		t.Fatalf("invalid latencies should fail")
	}
	wide := circuit.New("wide", 100)
	if _, err := BuildTimeline(wide, l, DefaultLatencies()); err == nil {
		t.Fatalf("circuit wider than layout should fail")
	}
}

func TestTimelineTraceJSON(t *testing.T) {
	c, l := fig3(t)
	tl, _ := BuildTimeline(c, l, DefaultLatencies())
	data, err := tl.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name  string  `json:"name"`
		Phase string  `json:"ph"`
		TS    float64 `json:"ts"`
		Dur   float64 `json:"dur"`
		TID   int     `json:"tid"`
		Cat   string  `json:"cat"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("invalid trace json: %v", err)
	}
	// 6 gates, one of which (the weak gate) occupies two chains → 7 events.
	if len(events) != 7 {
		t.Fatalf("events = %d, want 7", len(events))
	}
	weak := 0
	for _, e := range events {
		if e.Phase != "X" || e.Dur <= 0 {
			t.Fatalf("malformed event %+v", e)
		}
		if e.Cat == "weak" {
			weak++
		}
	}
	if weak != 2 {
		t.Fatalf("weak events = %d, want 2 (one per occupied chain)", weak)
	}
}
