package perf

// This file splits the evaluator's hot path at the point where the timing
// model enters. Evaluate classifies every gate against a layout (1-qubit,
// 2-qubit intra-chain, or 2-qubit weak-link) and then prices the classes
// under one Latencies. The classification — Bind — depends only on
// (circuit, layout); the pricing — Time — is where α and the other
// Table III knobs appear. Separating the two lets sweep engines reuse one
// Binding across every α cell (internal/core's stage pipeline caches them)
// and lets TimeAll price many latency models in a single pass over the
// gate list instead of one independent dynamic program per model.
//
// Bit-exactness contract: Binding.Time(lat) equals Evaluator.Evaluate(l,
// lat) field for field — including float bit patterns and critical-path
// tie-breaking — and TimeAll(lats)[i] equals Time(lats[i]). The property
// tests pin both.

import (
	"fmt"
	"sync"

	"velociti/internal/ti"
)

// GateClass is a gate's latency class under one layout.
type GateClass uint8

const (
	// ClassOneQ is a 1-qubit gate (latency δ).
	ClassOneQ GateClass = iota
	// ClassTwoQIntra is a 2-qubit gate within one chain (latency γ).
	ClassTwoQIntra
	// ClassTwoQWeak is a 2-qubit gate across a weak link (latency α·γ).
	ClassTwoQWeak
	numClasses
)

// Binding is the layout-dependent but latency-independent artifact of one
// (circuit, layout) pair: per-gate latency classes over the evaluator's CSR
// arrays, plus the weak-gate and links-used counts. A Binding is immutable
// after construction and safe for concurrent use, so sweep engines share
// one across α cells and worker goroutines.
type Binding struct {
	ev      *Evaluator
	classes []GateClass
	weak    int
	links   int
}

// Bind classifies every gate of the evaluator's circuit under layout l.
func (e *Evaluator) Bind(l *ti.Layout) (*Binding, error) {
	if e.c.NumQubits() > l.NumQubits() {
		return nil, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", e.c.NumQubits(), l.NumQubits())
	}
	b := &Binding{ev: e, classes: make([]GateClass, e.n)}
	for i := 0; i < e.n; i++ {
		switch {
		case !e.twoQ[i]:
			b.classes[i] = ClassOneQ
		case l.SameChain(int(e.qa[i]), int(e.qb[i])):
			b.classes[i] = ClassTwoQIntra
		default:
			b.classes[i] = ClassTwoQWeak
			b.weak++
		}
	}
	b.links = e.linksUsed(l)
	return b, nil
}

// Evaluator returns the evaluator the binding was built from.
func (b *Binding) Evaluator() *Evaluator { return b.ev }

// NumGates returns the number of bound gates.
func (b *Binding) NumGates() int { return b.ev.n }

// NumQubits returns the circuit's qubit count.
func (b *Binding) NumQubits() int { return b.ev.c.NumQubits() }

// Class returns gate i's latency class.
func (b *Binding) Class(i int) GateClass { return b.classes[i] }

// WeakGates returns the number of cross-chain 2-qubit gates.
func (b *Binding) WeakGates() int { return b.weak }

// LinksUsed returns Table I's w: distinct weak links used by placement.
func (b *Binding) LinksUsed() int { return b.links }

// lut returns the per-class latency table for one timing model. The weak
// entry is computed exactly as gateLatencies computes it (one multiply), so
// priced latencies are bit-identical to the classic path.
func classLatencies(lat Latencies) [numClasses]float64 {
	return [numClasses]float64{
		ClassOneQ:      lat.OneQubit,
		ClassTwoQIntra: lat.TwoQubit,
		ClassTwoQWeak:  lat.WeakPenalty * lat.TwoQubit,
	}
}

// sweepScratch is the pooled working memory of a multi-latency evaluation:
// lane-interleaved finish/prev buffers (gate-major, so one gate's lanes sit
// contiguously) plus the shared last-writer table.
type sweepScratch struct {
	finish []float64
	prev   []int32
	last   []int32
}

var sweepPool = sync.Pool{New: func() any { return new(sweepScratch) }}

func (s *sweepScratch) grow(cells, qubits int) {
	if cap(s.finish) < cells {
		s.finish = make([]float64, cells)
		s.prev = make([]int32, cells)
	}
	s.finish = s.finish[:cells]
	s.prev = s.prev[:cells]
	if cap(s.last) < qubits {
		s.last = make([]int32, qubits)
	}
	s.last = s.last[:qubits]
	for i := range s.last {
		s.last[i] = -1
	}
}

// Time prices the binding under one timing model. The Result is exactly
// equal — bit for bit, critical path included — to
// Evaluator.Evaluate(layout, lat) on the layout the binding was built from.
func (b *Binding) Time(lat Latencies) (Result, error) {
	res, err := b.TimeAll([]Latencies{lat})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// TimeAll prices the binding under every timing model in lats with one pass
// over the gate list: the dependency traversal, last-writer tracking, and
// class lookups are shared across models, and per-model finish times run in
// interleaved lanes over pooled scratch. TimeAll(lats)[i] is exactly equal
// to Time(lats[i]) — this is the parametric kernel behind α sweeps, where
// the models differ only in WeakPenalty.
func (b *Binding) TimeAll(lats []Latencies) ([]Result, error) {
	nl := len(lats)
	if nl == 0 {
		return nil, fmt.Errorf("perf: TimeAll requires at least one timing model")
	}
	for _, lat := range lats {
		if err := lat.Validate(); err != nil {
			return nil, err
		}
	}
	e := b.ev
	w := b.links
	if w > e.twoQGates {
		w = e.twoQGates
	}
	results := make([]Result, nl)
	luts := make([][numClasses]float64, nl)
	for j, lat := range lats {
		luts[j] = classLatencies(lat)
		results[j] = Result{
			SerialMicros: SerialTimeFromCounts(e.oneQGates, e.twoQGates, w, lat),
			WeakGates:    b.weak,
			LinksUsed:    b.links,
		}
	}
	if e.n == 0 {
		return results, nil
	}

	s := sweepPool.Get().(*sweepScratch)
	s.grow(e.n*nl, e.c.NumQubits())
	finish, prev, last := s.finish, s.prev, s.last

	// serial accumulates the per-gate-charged serial worst case per lane in
	// gate order — the same addition order Evaluate uses, so sums match bit
	// for bit. total/best track the makespan and its final gate per lane
	// with Evaluate's strict-> tie-breaking (first maximum wins).
	serial := make([]float64, nl)
	total := make([]float64, nl)
	best := make([]int32, nl)

	for i := 0; i < e.n; i++ {
		p0 := last[e.qa[i]]
		p1 := int32(-1)
		if qb := e.qb[i]; qb >= 0 {
			p1 = last[qb]
		}
		class := b.classes[i]
		base := i * nl
		for j := 0; j < nl; j++ {
			ready := 0.0
			pr := int32(-1)
			if p0 >= 0 && finish[int(p0)*nl+j] > ready {
				ready = finish[int(p0)*nl+j]
				pr = p0
			}
			if p1 >= 0 && finish[int(p1)*nl+j] > ready {
				ready = finish[int(p1)*nl+j]
				pr = p1
			}
			d := luts[j][class]
			f := ready + d
			finish[base+j] = f
			prev[base+j] = pr
			serial[j] += d
			if f > total[j] {
				total[j] = f
				best[j] = int32(i)
			}
		}
		last[e.qa[i]] = int32(i)
		if qb := e.qb[i]; qb >= 0 {
			last[qb] = int32(i)
		}
	}

	labels := e.Labels()
	for j := 0; j < nl; j++ {
		results[j].SerialPerGateMicros = serial[j]
		results[j].ParallelMicros = total[j]
		depth := 0
		for at := best[j]; at != -1; at = prev[int(at)*nl+j] {
			depth++
		}
		path := make([]string, depth)
		for at := best[j]; at != -1; at = prev[int(at)*nl+j] {
			depth--
			path[depth] = labels[at]
		}
		results[j].CriticalPath = path
	}
	sweepPool.Put(s)
	return results, nil
}

// ParallelTime prices only the parallel model — the makespan under ASAP
// scheduling — for one timing model, with no critical-path bookkeeping. It
// equals Time(lat).ParallelMicros exactly; fidelity estimation uses it for
// the dephasing window.
func (b *Binding) ParallelTime(lat Latencies) float64 {
	e := b.ev
	if e.n == 0 {
		return 0
	}
	lut := classLatencies(lat)
	s := sweepPool.Get().(*sweepScratch)
	s.grow(e.n, e.c.NumQubits())
	finish, last := s.finish, s.last
	total := 0.0
	for i := 0; i < e.n; i++ {
		ready := 0.0
		if p := last[e.qa[i]]; p >= 0 && finish[p] > ready {
			ready = finish[p]
		}
		if qb := e.qb[i]; qb >= 0 {
			if p := last[qb]; p >= 0 && finish[p] > ready {
				ready = finish[p]
			}
		}
		f := ready + lut[b.classes[i]]
		finish[i] = f
		last[e.qa[i]] = int32(i)
		if qb := e.qb[i]; qb >= 0 {
			last[qb] = int32(i)
		}
		if f > total {
			total = f
		}
	}
	sweepPool.Put(s)
	return total
}

// EvaluateAll runs both performance models for one layout under every
// timing model in lats, sharing the gate classification and the dependency
// traversal across models. EvaluateAll(l, lats)[i] is exactly equal to
// Evaluate(l, lats[i]); with the models of an α sweep it replaces len(lats)
// independent dynamic programs by one multi-lane pass.
func (e *Evaluator) EvaluateAll(l *ti.Layout, lats []Latencies) ([]Result, error) {
	b, err := e.Bind(l)
	if err != nil {
		return nil, err
	}
	return b.TimeAll(lats)
}
