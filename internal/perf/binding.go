package perf

// This file splits the evaluator's hot path at the point where the timing
// model enters. Evaluate classifies every gate against a layout (1-qubit,
// 2-qubit intra-chain, or 2-qubit weak-link) and then prices the classes
// under one Latencies. The classification — Bind — depends only on
// (circuit, layout); the pricing — Time — is where α and the other
// Table III knobs appear. Separating the two lets sweep engines reuse one
// Binding across every α cell (internal/core's stage pipeline caches them)
// and lets TimeAll price many latency models in a single pass over the
// gate list instead of one independent dynamic program per model.
//
// Bit-exactness contract: Binding.Time(lat) equals Evaluator.Evaluate(l,
// lat) field for field — including float bit patterns and critical-path
// tie-breaking — and TimeAll(lats)[i] equals Time(lats[i]). The property
// tests pin both.

import (
	"fmt"
	"sync"

	"velociti/internal/circuit"
	"velociti/internal/ti"
)

// GateClass is a gate's latency class under one layout.
type GateClass uint8

const (
	// ClassOneQ is a 1-qubit gate (latency δ).
	ClassOneQ GateClass = iota
	// ClassTwoQIntra is a 2-qubit gate within one chain (latency γ).
	ClassTwoQIntra
	// ClassTwoQWeak is a 2-qubit gate across a weak link (latency α·γ).
	ClassTwoQWeak
	numClasses
)

// NumGateClasses is the number of distinct gate latency classes; per-class
// tables (e.g. the fidelity estimator's error LUT) are indexed by GateClass
// and sized by this constant.
const NumGateClasses = int(numClasses)

// Binding is the layout-dependent but latency-independent artifact of one
// (circuit, layout) pair: per-gate latency classes over the evaluator's CSR
// arrays, plus the weak-gate and links-used counts. A Binding is immutable
// after construction and safe for concurrent use, so sweep engines share
// one across α cells and worker goroutines.
type Binding struct {
	ev      *Evaluator
	classes []GateClass
	weak    int
	links   int
	// transport is the shuttle timing backend's per-gate path plan,
	// attached once by AttachTransport (the backend's Prepare hook) before
	// the binding is shared; nil under the weak-link backend.
	transport *transportPlan
}

// Bind classifies every gate of the evaluator's circuit under layout l.
func (e *Evaluator) Bind(l *ti.Layout) (*Binding, error) {
	if e.c.NumQubits() > l.NumQubits() {
		return nil, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", e.c.NumQubits(), l.NumQubits())
	}
	b := &Binding{ev: e, classes: make([]GateClass, e.n)}
	// One walk both classifies gates and tallies Table I's w (distinct
	// weak links used): the chain pair is resolved once per gate instead
	// of re-deriving it in a second linksUsed pass. The pair→link table
	// mirrors linksUsed exactly, so the counts agree.
	s, pairLink, used, nc := newBindScratch(l)
	// chainOf is indexed directly: qa/qb were range-checked when the gates
	// were appended, and a fresh classes slice is already ClassOneQ (zero),
	// so 1-qubit gates need no store at all.
	chainOf := l.ChainAssignments()
	for i := 0; i < e.n; i++ {
		if !e.twoQ[i] {
			continue
		}
		ca, cb := chainOf[e.qa[i]], chainOf[e.qb[i]]
		if ca == cb {
			b.classes[i] = ClassTwoQIntra
			continue
		}
		b.classes[i] = ClassTwoQWeak
		b.weak++
		if id := pairLink[ca*nc+cb]; id != 0 && !used[id-1] {
			used[id-1] = true
			b.links++
		}
	}
	bindScratchPool.Put(s)
	return b, nil
}

// newBindScratch readies the pooled pair→link table and usage bitmap for
// one classification walk over layout l's device.
func newBindScratch(l *ti.Layout) (s *bindScratch, pairLink []int32, used []bool, nc int) {
	d := l.Device()
	nc = d.NumChains()
	s = bindScratchPool.Get().(*bindScratch)
	if cap(s.pairLink) < nc*nc {
		s.pairLink = make([]int32, nc*nc)
	}
	pairLink = s.pairLink[:nc*nc]
	for i := range pairLink {
		pairLink[i] = 0
	}
	for i := len(d.WeakLinks()) - 1; i >= 0; i-- {
		wl := d.WeakLinks()[i]
		pairLink[wl.A.Chain*nc+wl.B.Chain] = int32(wl.ID) + 1
		pairLink[wl.B.Chain*nc+wl.A.Chain] = int32(wl.ID) + 1
	}
	if cap(s.used) < d.MaxWeakLinks()+1 {
		s.used = make([]bool, d.MaxWeakLinks()+1)
	}
	used = s.used[:d.MaxWeakLinks()+1]
	for i := range used {
		used[i] = false
	}
	return s, pairLink, used, nc
}

// BindCircuitScratch builds a pooled evaluator for c and its binding under
// l in ONE walk over the gate list — operand extraction and gate
// classification share the pass, where NewEvaluatorScratch followed by
// Bind would walk the gates twice. The result is indistinguishable from
// that two-step sequence (the sweep property tests pin it against
// Stages.Bind); the same recycling contract applies, via
// RecycleEvaluator(b.Evaluator()).
func BindCircuitScratch(c *circuit.Circuit, l *ti.Layout) (*Binding, error) {
	if c.NumQubits() > l.NumQubits() {
		return nil, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	e, _ := evaluatorPool.Get().(*Evaluator)
	if e == nil {
		e = &Evaluator{}
	}
	n := c.NumGates()
	e.c = c
	e.n = n
	e.oneQGates, e.twoQGates = 0, 0
	e.once = new(evalOnce)
	e.labels = nil
	e.qa = growInt32(e.qa, n)
	e.qb = growInt32(e.qb, n)
	if cap(e.twoQ) < n {
		e.twoQ = make([]bool, n)
	}
	e.twoQ = e.twoQ[:n]

	b := &Binding{ev: e, classes: make([]GateClass, n)}
	s, pairLink, used, nc := newBindScratch(l)
	chainOf := l.ChainAssignments()
	gs := c.Gates()
	for i := range gs {
		g := &gs[i]
		id := int32(g.ID)
		qa := int32(g.Qubits[0])
		e.qa[id] = qa
		e.qb[id] = -1
		e.twoQ[id] = false
		if !g.IsTwoQubit() {
			if len(g.Qubits) == 1 {
				e.oneQGates++
			}
			continue
		}
		qb := int32(g.Qubits[1])
		e.twoQ[id] = true
		e.qb[id] = qb
		e.twoQGates++
		ca, cb := chainOf[qa], chainOf[qb]
		if ca == cb {
			b.classes[id] = ClassTwoQIntra
			continue
		}
		b.classes[id] = ClassTwoQWeak
		b.weak++
		if wid := pairLink[ca*nc+cb]; wid != 0 && !used[wid-1] {
			used[wid-1] = true
			b.links++
		}
	}
	bindScratchPool.Put(s)
	return b, nil
}

// bindScratch is the pooled pair→link table and usage bitmap of one Bind.
type bindScratch struct {
	pairLink []int32
	used     []bool
}

var bindScratchPool = sync.Pool{New: func() any { return new(bindScratch) }}

// Evaluator returns the evaluator the binding was built from.
func (b *Binding) Evaluator() *Evaluator { return b.ev }

// NumGates returns the number of bound gates.
func (b *Binding) NumGates() int { return b.ev.n }

// NumQubits returns the circuit's qubit count.
func (b *Binding) NumQubits() int { return b.ev.c.NumQubits() }

// Class returns gate i's latency class.
func (b *Binding) Class(i int) GateClass { return b.classes[i] }

// Classes returns the per-gate latency classes in gate order. The returned
// slice is the binding's backing store and must not be modified.
func (b *Binding) Classes() []GateClass { return b.classes }

// WeakGates returns the number of cross-chain 2-qubit gates.
func (b *Binding) WeakGates() int { return b.weak }

// LinksUsed returns Table I's w: distinct weak links used by placement.
func (b *Binding) LinksUsed() int { return b.links }

// lut returns the per-class latency table for one timing model. The weak
// entry is computed exactly as gateLatencies computes it (one multiply), so
// priced latencies are bit-identical to the classic path.
func classLatencies(lat Latencies) [numClasses]float64 {
	return [numClasses]float64{
		ClassOneQ:      lat.OneQubit,
		ClassTwoQIntra: lat.TwoQubit,
		ClassTwoQWeak:  lat.WeakPenalty * lat.TwoQubit,
	}
}

// sweepScratch is the pooled working memory of a multi-latency evaluation:
// lane-interleaved finish/prev buffers (gate-major, so one gate's lanes sit
// contiguously) plus the shared last-writer table.
type sweepScratch struct {
	finish []float64
	prev   []int32
	last   []int32
	luts   []float64 // flat per-lane class-latency tables (NumGateClasses × lanes)
	busy   []float64 // per-(segment, lane) busy-until times for transport contention
}

var sweepPool = sync.Pool{New: func() any { return new(sweepScratch) }}

// growLuts sizes the flat per-lane latency table for nl lanes.
func (s *sweepScratch) growLuts(nl int) []float64 {
	if cap(s.luts) < NumGateClasses*nl {
		s.luts = make([]float64, NumGateClasses*nl)
	}
	s.luts = s.luts[:NumGateClasses*nl]
	return s.luts
}

func (s *sweepScratch) grow(cells, qubits int) {
	if cap(s.finish) < cells {
		s.finish = make([]float64, cells)
		s.prev = make([]int32, cells)
	}
	s.finish = s.finish[:cells]
	s.prev = s.prev[:cells]
	if cap(s.last) < qubits {
		s.last = make([]int32, qubits)
	}
	s.last = s.last[:qubits]
	for i := range s.last {
		s.last[i] = -1
	}
}

// Time prices the binding under one timing model. The Result is exactly
// equal — bit for bit, critical path included — to
// Evaluator.Evaluate(layout, lat) on the layout the binding was built from.
func (b *Binding) Time(lat Latencies) (Result, error) {
	res, err := b.TimeAll([]Latencies{lat})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// TimeAll prices the binding under every timing model in lats with one pass
// over the gate list: the dependency traversal, last-writer tracking, and
// class lookups are shared across models, and per-model finish times run in
// interleaved lanes over pooled scratch. TimeAll(lats)[i] is exactly equal
// to Time(lats[i]) — this is the parametric kernel behind α sweeps, where
// the models differ only in WeakPenalty.
func (b *Binding) TimeAll(lats []Latencies) ([]Result, error) {
	nl := len(lats)
	if nl == 0 {
		return nil, fmt.Errorf("perf: TimeAll requires at least one timing model")
	}
	for _, lat := range lats {
		if err := lat.Validate(); err != nil {
			return nil, err
		}
	}
	e := b.ev
	w := b.links
	if w > e.twoQGates {
		w = e.twoQGates
	}
	results := make([]Result, nl)
	luts := make([][numClasses]float64, nl)
	for j, lat := range lats {
		luts[j] = classLatencies(lat)
		results[j] = Result{
			SerialMicros: SerialTimeFromCounts(e.oneQGates, e.twoQGates, w, lat),
			WeakGates:    b.weak,
			LinksUsed:    b.links,
		}
	}
	if e.n == 0 {
		return results, nil
	}

	s := sweepPool.Get().(*sweepScratch)
	s.grow(e.n*nl, e.c.NumQubits())
	finish, prev, last := s.finish, s.prev, s.last

	// serial accumulates the per-gate-charged serial worst case per lane in
	// gate order — the same addition order Evaluate uses, so sums match bit
	// for bit. total/best track the makespan and its final gate per lane
	// with Evaluate's strict-> tie-breaking (first maximum wins).
	serial := make([]float64, nl)
	total := make([]float64, nl)
	best := make([]int32, nl)

	for i := 0; i < e.n; i++ {
		p0 := last[e.qa[i]]
		p1 := int32(-1)
		if qb := e.qb[i]; qb >= 0 {
			p1 = last[qb]
		}
		class := b.classes[i]
		base := i * nl
		for j := 0; j < nl; j++ {
			ready := 0.0
			pr := int32(-1)
			if p0 >= 0 && finish[int(p0)*nl+j] > ready {
				ready = finish[int(p0)*nl+j]
				pr = p0
			}
			if p1 >= 0 && finish[int(p1)*nl+j] > ready {
				ready = finish[int(p1)*nl+j]
				pr = p1
			}
			d := luts[j][class]
			f := ready + d
			finish[base+j] = f
			prev[base+j] = pr
			serial[j] += d
			if f > total[j] {
				total[j] = f
				best[j] = int32(i)
			}
		}
		last[e.qa[i]] = int32(i)
		if qb := e.qb[i]; qb >= 0 {
			last[qb] = int32(i)
		}
	}

	labels := e.Labels()
	for j := 0; j < nl; j++ {
		results[j].SerialPerGateMicros = serial[j]
		results[j].ParallelMicros = total[j]
		depth := 0
		for at := best[j]; at != -1; at = prev[int(at)*nl+j] {
			depth++
		}
		path := make([]string, depth)
		for at := best[j]; at != -1; at = prev[int(at)*nl+j] {
			depth--
			path[depth] = labels[at]
		}
		results[j].CriticalPath = path
	}
	sweepPool.Put(s)
	return results, nil
}

// ParallelTime prices only the parallel model — the makespan under ASAP
// scheduling — for one timing model, with no critical-path bookkeeping. It
// equals Time(lat).ParallelMicros exactly; fidelity estimation uses it for
// the dephasing window.
func (b *Binding) ParallelTime(lat Latencies) float64 {
	e := b.ev
	if e.n == 0 {
		return 0
	}
	lut := classLatencies(lat)
	s := sweepPool.Get().(*sweepScratch)
	s.grow(e.n, e.c.NumQubits())
	finish, last := s.finish, s.last
	total := 0.0
	for i := 0; i < e.n; i++ {
		ready := 0.0
		if p := last[e.qa[i]]; p >= 0 && finish[p] > ready {
			ready = finish[p]
		}
		if qb := e.qb[i]; qb >= 0 {
			if p := last[qb]; p >= 0 && finish[p] > ready {
				ready = finish[p]
			}
		}
		f := ready + lut[b.classes[i]]
		finish[i] = f
		last[e.qa[i]] = int32(i)
		if qb := e.qb[i]; qb >= 0 {
			last[qb] = int32(i)
		}
		if f > total {
			total = f
		}
	}
	sweepPool.Put(s)
	return total
}

// ParallelTimeAll prices the makespan under every timing model in lats with
// one pass over the gate list — the batched counterpart of ParallelTime,
// sharing the dependency traversal and last-writer tracking across models
// the way TimeAll does, but with none of the serial or critical-path
// bookkeeping. dst is reused when it has capacity; the returned slice has
// len(lats), and entry j equals ParallelTime(lats[j]) bit for bit (same
// per-gate comparison order, same strict-> maximum tracking). Like
// ParallelTime, it assumes already validated timing models.
func (b *Binding) ParallelTimeAll(lats []Latencies, dst []float64) []float64 {
	nl := len(lats)
	if cap(dst) < nl {
		dst = make([]float64, nl)
	}
	dst = dst[:nl]
	if nl == 0 {
		return dst
	}
	if nl == 1 {
		dst[0] = b.ParallelTime(lats[0])
		return dst
	}
	for j := range dst {
		dst[j] = 0
	}
	e := b.ev
	if e.n == 0 {
		return dst
	}
	s := sweepPool.Get().(*sweepScratch)
	s.grow(e.n*nl, e.c.NumQubits())
	luts := s.growLuts(nl)
	for j, lat := range lats {
		cl := classLatencies(lat)
		copy(luts[j*NumGateClasses:], cl[:])
	}
	finish, last := s.finish, s.last
	for i := 0; i < e.n; i++ {
		p0 := last[e.qa[i]]
		p1 := int32(-1)
		if qb := e.qb[i]; qb >= 0 {
			p1 = last[qb]
		}
		class := int(b.classes[i])
		// Hoisted per-gate row views: one multiply per predecessor instead
		// of one per (predecessor, lane). The lane loop's comparison order
		// is unchanged, so results stay bit-identical to ParallelTime.
		var f0, f1 []float64
		if p0 >= 0 {
			f0 = finish[int(p0)*nl : int(p0)*nl+nl]
		}
		if p1 >= 0 {
			f1 = finish[int(p1)*nl : int(p1)*nl+nl]
		}
		row := finish[i*nl : i*nl+nl]
		for j := 0; j < nl; j++ {
			ready := 0.0
			if f0 != nil && f0[j] > ready {
				ready = f0[j]
			}
			if f1 != nil && f1[j] > ready {
				ready = f1[j]
			}
			f := ready + luts[j*NumGateClasses+class]
			row[j] = f
			if f > dst[j] {
				dst[j] = f
			}
		}
		last[e.qa[i]] = int32(i)
		if qb := e.qb[i]; qb >= 0 {
			last[qb] = int32(i)
		}
	}
	sweepPool.Put(s)
	return dst
}

// EvaluateAll runs both performance models for one layout under every
// timing model in lats, sharing the gate classification and the dependency
// traversal across models. EvaluateAll(l, lats)[i] is exactly equal to
// Evaluate(l, lats[i]); with the models of an α sweep it replaces len(lats)
// independent dynamic programs by one multi-lane pass.
func (e *Evaluator) EvaluateAll(l *ti.Layout, lats []Latencies) ([]Result, error) {
	b, err := e.Bind(l)
	if err != nil {
		return nil, err
	}
	return b.TimeAll(lats)
}
