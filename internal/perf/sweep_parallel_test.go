package perf

import (
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// randCircuit builds a pseudo-random mixed circuit for kernel equivalence
// tests.
func randCircuit(t *testing.T, name string, qubits, oneQ, twoQ int, seed int64) *circuit.Circuit {
	t.Helper()
	r := stats.NewRand(seed)
	c := circuit.New(name, qubits)
	for i := 0; i < oneQ; i++ {
		c.X(r.Intn(qubits))
	}
	for i := 0; i < twoQ; i++ {
		a := r.Intn(qubits)
		b := r.Intn(qubits - 1)
		if b >= a {
			b++
		}
		c.CX(a, b)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return c
}

func testLayout(t *testing.T, qubits, chainLength int) *ti.Layout {
	t.Helper()
	d, err := ti.DeviceFor(qubits, chainLength, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	return seqLayout(t, d, qubits)
}

// seqLayout fills chains in ascending qubit order — placement.Sequential
// without the import: placement now depends on perf (anneal.go), so perf's
// internal tests cannot import it back.
func seqLayout(t *testing.T, d *ti.Device, qubits int) *ti.Layout {
	t.Helper()
	chains := make([][]int, d.NumChains())
	for q := 0; q < qubits; q++ {
		c := q / d.ChainLength()
		chains[c] = append(chains[c], q)
	}
	l, err := ti.NewLayout(d, chains)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestParallelTimeAllMatchesParallelTime pins the batched makespan kernel:
// lane j equals ParallelTime(lats[j]) bit for bit, for several lane counts
// including the single-lane fast path.
func TestParallelTimeAllMatchesParallelTime(t *testing.T) {
	c := randCircuit(t, "pta", 48, 60, 240, 9)
	l := testLayout(t, 48, 12)
	b, err := NewEvaluator(c).Bind(l)
	if err != nil {
		t.Fatal(err)
	}
	alphas := []float64{3.0, 2.0, 1.5, 1.2, 1.0}
	for lanes := 1; lanes <= len(alphas); lanes++ {
		lats := make([]Latencies, lanes)
		for j := 0; j < lanes; j++ {
			lats[j] = DefaultLatencies()
			lats[j].WeakPenalty = alphas[j]
		}
		got := b.ParallelTimeAll(lats, nil)
		for j, lat := range lats {
			if want := b.ParallelTime(lat); got[j] != want {
				t.Fatalf("lanes=%d lane %d: %v != ParallelTime %v", lanes, j, got[j], want)
			}
		}
	}
}

// TestParallelTimeAllReusesDst verifies the destination-reuse contract.
func TestParallelTimeAllReusesDst(t *testing.T) {
	c := randCircuit(t, "pta-dst", 16, 10, 30, 2)
	l := testLayout(t, 16, 8)
	b, err := NewEvaluator(c).Bind(l)
	if err != nil {
		t.Fatal(err)
	}
	lats := []Latencies{DefaultLatencies(), DefaultLatencies()}
	lats[1].WeakPenalty = 1.0
	dst := make([]float64, 0, 8)
	out := b.ParallelTimeAll(lats, dst)
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("dst with sufficient capacity was not reused")
	}
	if empty := b.ParallelTimeAll(nil, nil); len(empty) != 0 {
		t.Fatalf("empty lats: len = %d, want 0", len(empty))
	}
}

// TestParallelTimeConstrainedAllMatchesPerLevel pins the batched constrained
// kernel against the single-level entry point across capacity levels,
// including the unlimited (<= 0) passthrough.
func TestParallelTimeConstrainedAllMatchesPerLevel(t *testing.T) {
	c := randCircuit(t, "ptc", 32, 40, 160, 17)
	l := testLayout(t, 32, 8)
	lat := DefaultLatencies()
	capacities := []int{0, 1, 2, 4, 8, 32, -3}
	got, err := ParallelTimeConstrainedAll(c, l, lat, capacities)
	if err != nil {
		t.Fatal(err)
	}
	for j, capacity := range capacities {
		want, err := ParallelTimeConstrained(c, l, lat, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if got[j] != want {
			t.Fatalf("capacity %d: %v != %v", capacity, got[j], want)
		}
	}
	if out, err := ParallelTimeConstrainedAll(c, l, lat, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty capacities: %v, %v", out, err)
	}
}
