package perf

// This file prices gate STREAMS: the memory-bounded counterpart of
// binding.go's TimeAll and transport.go's TimeTransportAll. Both
// materialized kernels only ever read a gate's predecessors through the
// per-qubit last-writer table, so the full finish[] history is replaced
// here by a per-qubit frontier — one finish time per (qubit, lane) — and
// peak memory becomes O(qubits·lanes + window), independent of gate count.
//
// Bit-exactness contract: StreamTimeAll equals Binding.TimeAll and
// StreamTransportAll equals Binding.TimeTransportAll field for field —
// same serial accumulation order, same strict-> maximum tracking, same
// weak-link counting rules — EXCEPT that CriticalPath is omitted
// (reconstructing it needs the Θ(gates) predecessor chain the streaming
// path exists to avoid; Result's JSON tag drops the empty field). The
// property tests pin the equivalence on every workload generator and both
// backends.
//
// Classification state is the same as Bind's: the pooled pair→link table
// (lowest link id wins, exactly newBindScratch's reverse-iteration rule)
// and the per-link usage bitmap, both O(device). A rolling content hash
// (circuit.FingerprintAccum) is folded over the stream so cache keys can
// still be formed without buffering gates.

import (
	"fmt"

	"velociti/internal/circuit"
	"velociti/internal/dag"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// streamChunkGates is the evaluation window of the weak-link streaming
// kernel: gates per dag.Chunk before a relaxation pass flushes them into
// the per-qubit frontier. A variable (not a const) so the chunk-boundary
// adversarial tests can shrink it to force gates onto window edges.
var streamChunkGates = 4096

// StreamStats summarizes a consumed gate stream: the gate counts the
// serial model needs and the rolling content fingerprint, bit-identical to
// Circuit.Fingerprint of the materialized circuit.
type StreamStats struct {
	// Fingerprint is the FNV-1a content hash of the stream (name, width,
	// every gate), equal to the materialized Circuit.Fingerprint.
	Fingerprint uint64
	// Gates is the total number of gates consumed.
	Gates int
	// OneQubitGates and TwoQubitGates are the paper's q and p.
	OneQubitGates int
	TwoQubitGates int
}

// streamState is the shared per-stream bookkeeping of both streaming
// kernels: classification against the layout, gate counts, and the rolling
// fingerprint.
type streamState struct {
	chainOf  []int
	pairLink []int32
	used     []bool
	nc       int
	scratch  *bindScratch

	oneQ, twoQ  int
	weak, links int
	fp          circuit.FingerprintAccum
}

func newStreamState(src circuit.Source, l *ti.Layout) *streamState {
	s := &streamState{chainOf: l.ChainAssignments(), fp: circuit.NewFingerprintAccum(src.Name, src.Qubits)}
	s.scratch, s.pairLink, s.used, s.nc = newBindScratch(l)
	return s
}

// classify mirrors Bind's walk for one gate: class, weak-gate tally, and
// distinct-links tally (lowest link id wins, matching newBindScratch).
func (s *streamState) classify(g *circuit.Gate) GateClass {
	s.fp.AddGate(g)
	if !g.IsTwoQubit() {
		s.oneQ++
		return ClassOneQ
	}
	s.twoQ++
	ca, cb := s.chainOf[g.Qubits[0]], s.chainOf[g.Qubits[1]]
	if ca == cb {
		return ClassTwoQIntra
	}
	s.weak++
	if id := s.pairLink[ca*s.nc+cb]; id != 0 && !s.used[id-1] {
		s.used[id-1] = true
		s.links++
	}
	return ClassTwoQWeak
}

// close releases the pooled classification scratch and returns the
// stream's stats.
func (s *streamState) close() StreamStats {
	bindScratchPool.Put(s.scratch)
	s.scratch = nil
	return StreamStats{
		Fingerprint:   s.fp.Sum(),
		Gates:         s.oneQ + s.twoQ,
		OneQubitGates: s.oneQ,
		TwoQubitGates: s.twoQ,
	}
}

// stream-entry validation shared by both kernels; the messages match the
// materialized path's (Bind's qubit check, TimeAll's lats checks).
func streamChecks(src circuit.Source, l *ti.Layout, lats []Latencies) error {
	if src.Emit == nil {
		return verr.Inputf("perf: source %q has no emitter", src.Name)
	}
	if src.Qubits > l.NumQubits() {
		return fmt.Errorf("perf: circuit has %d qubits but layout places only %d", src.Qubits, l.NumQubits())
	}
	if len(lats) == 0 {
		return fmt.Errorf("perf: TimeAll requires at least one timing model")
	}
	for _, lat := range lats {
		if err := lat.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// finalizeResults fills the count-derived fields every lane shares once
// the stream is exhausted. w is Table I's links-used clamp, exactly
// TimeAll's min(links, twoQGates).
func (s *streamState) finalizeResults(results []Result, lats []Latencies, serial, total []float64, local bool) {
	w := s.links
	if w > s.twoQ {
		w = s.twoQ
	}
	for j, lat := range lats {
		if local {
			lat.WeakPenalty = 1
		}
		results[j] = Result{
			SerialMicros:        SerialTimeFromCounts(s.oneQ, s.twoQ, w, lat),
			SerialPerGateMicros: serial[j],
			ParallelMicros:      total[j],
			WeakGates:           s.weak,
			LinksUsed:           s.links,
		}
	}
}

// StreamTimeAll prices a gate stream under every timing model in lats
// with the weak-link backend, in O(qubits·lanes + window) memory. Entry j
// equals Binding.TimeAll(lats)[j] on the materialized circuit, bit for
// bit, except that CriticalPath is omitted (see the file comment). The
// returned StreamStats carries the rolling fingerprint for cache keying.
func StreamTimeAll(src circuit.Source, l *ti.Layout, lats []Latencies) ([]Result, StreamStats, error) {
	if err := streamChecks(src, l, lats); err != nil {
		return nil, StreamStats{}, err
	}
	nl := len(lats)
	luts := make([][numClasses]float64, nl)
	for j, lat := range lats {
		luts[j] = classLatencies(lat)
	}

	st := newStreamState(src, l)
	window := streamChunkGates
	ch := dag.NewChunk(window, src.Qubits)
	classes := make([]GateClass, 0, window)
	cost := make([]float64, window)
	dist := make([]float64, window)
	qfinish := make([]float64, src.Qubits*nl)
	serial := make([]float64, nl)
	total := make([]float64, nl)

	// flush relaxes the buffered window once per lane and folds each
	// lane's finish times back into the per-qubit frontier. Within a lane
	// the pass visits gates in program order, so the serial accumulation
	// and the strict-> makespan tracking reproduce TimeAll's exactly.
	flush := func() {
		m := ch.Len()
		if m == 0 {
			return
		}
		for j := 0; j < nl; j++ {
			for i := 0; i < m; i++ {
				cost[i] = luts[j][classes[i]]
			}
			ch.Run(cost[:m], qfinish, nl, j, dist[:m])
			for i := 0; i < m; i++ {
				serial[j] += cost[i]
				if dist[i] > total[j] {
					total[j] = dist[i]
				}
			}
			qs, ws := ch.Writers()
			for k, q := range qs {
				qfinish[int(q)*nl+j] = dist[ws[k]]
			}
		}
		ch.Reset()
		classes = classes[:0]
	}

	err := src.Emit(func(g *circuit.Gate) error {
		classes = append(classes, st.classify(g))
		qb := int32(-1)
		if g.IsTwoQubit() {
			qb = int32(g.Qubits[1])
		}
		ch.Add(int32(g.Qubits[0]), qb)
		if ch.Full() {
			flush()
		}
		return nil
	})
	if err != nil {
		st.close()
		return nil, StreamStats{}, err
	}
	flush()

	results := make([]Result, nl)
	stats := st.close()
	st.finalizeResults(results, lats, serial, total, false)
	return results, stats, nil
}

// StreamTransportAll prices a gate stream under every timing model in lats
// with the shuttle transport model, in O(qubits·lanes + segments·lanes)
// memory. The busy-until segment reservation is order-dependent, so the
// kernel runs gate-at-a-time over the per-qubit frontier rather than in
// relaxation windows; the recurrence is TimeTransportAll's, verbatim.
// Entry j equals Binding.TimeTransportAll(costs, lats)[j] on the
// materialized circuit, bit for bit, except that CriticalPath is omitted.
func StreamTransportAll(src circuit.Source, l *ti.Layout, costs TransportCosts, lats []Latencies) ([]Result, StreamStats, error) {
	if err := streamChecks(src, l, lats); err != nil {
		return nil, StreamStats{}, err
	}
	if err := costs.Validate(); err != nil {
		return nil, StreamStats{}, err
	}
	nl := len(lats)
	// Transport replaces the weak penalty: weak gates run at the LOCAL γ,
	// exactly TimeTransportAll's neutralized latency tables.
	luts := make([][numClasses]float64, nl)
	for j, lat := range lats {
		local := lat
		local.WeakPenalty = 1
		luts[j] = classLatencies(local)
	}

	st := newStreamState(src, l)
	d := l.Device()
	numSegs := d.MaxWeakLinks()
	fixed := costs.SplitMicros + costs.MergeMicros + costs.RecoolMicros
	// Paths are cached per canonical (min, max) chain pair, matching
	// AttachTransport's direction-independent lookup.
	paths := make([][]int32, st.nc*st.nc)
	busy := make([]float64, numSegs*nl)
	qfinish := make([]float64, src.Qubits*nl)
	serial := make([]float64, nl)
	total := make([]float64, nl)
	transportTotal := 0.0

	err := src.Emit(func(g *circuit.Gate) error {
		class := st.classify(g)
		qa := g.Qubits[0]
		qb := -1
		var segs []int32
		over := 0.0
		if class == ClassTwoQWeak {
			lo, hi := st.chainOf[qa], st.chainOf[g.Qubits[1]]
			if lo > hi {
				lo, hi = hi, lo
			}
			p := paths[lo*st.nc+hi]
			if p == nil {
				links := d.PathLinks(lo, hi)
				if len(links) == 0 {
					return verr.Inputf("perf: qubits q%d and q%d sit on disconnected chains %d and %d; no shuttle path exists",
						qa, g.Qubits[1], st.chainOf[qa], st.chainOf[g.Qubits[1]])
				}
				p = make([]int32, len(links))
				for k, wl := range links {
					p[k] = int32(wl.ID)
				}
				paths[lo*st.nc+hi] = p
			}
			segs = p
			over = fixed + float64(len(segs))*costs.MovePerHopMicros
			transportTotal += over
		}
		if g.IsTwoQubit() {
			qb = g.Qubits[1]
		}
		for j := 0; j < nl; j++ {
			ready := 0.0
			if v := qfinish[qa*nl+j]; v > ready {
				ready = v
			}
			if qb >= 0 {
				if v := qfinish[qb*nl+j]; v > ready {
					ready = v
				}
			}
			dlt := luts[j][class]
			start := ready
			if over > 0 {
				for _, sg := range segs {
					if v := busy[int(sg)*nl+j]; v > start {
						start = v
					}
				}
			}
			tEnd := start + over
			if over > 0 {
				for _, sg := range segs {
					busy[int(sg)*nl+j] = tEnd
				}
			}
			f := tEnd + dlt
			serial[j] += over + dlt
			if f > total[j] {
				total[j] = f
			}
			qfinish[qa*nl+j] = f
			if qb >= 0 {
				qfinish[qb*nl+j] = f
			}
		}
		return nil
	})
	if err != nil {
		st.close()
		return nil, StreamStats{}, err
	}

	results := make([]Result, nl)
	stats := st.close()
	st.finalizeResults(results, lats, serial, total, true)
	for j := range results {
		results[j].SerialMicros += transportTotal
	}
	return results, stats, nil
}
