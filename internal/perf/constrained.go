package perf

import (
	"fmt"
	"sort"

	"velociti/internal/circuit"
	"velociti/internal/ti"
)

// The paper's parallel model assumes a chain can drive arbitrarily many
// gates at once; real trapped-ion systems are limited by their control
// hardware — the paper itself notes that published systems address ions
// through a 32-channel AOM (§II-B), and driving several simultaneous gates
// multiplexes those channels. ParallelTimeConstrained extends the parallel
// model with a per-chain concurrency budget: at most `capacity` gates may
// execute on a chain at any instant (a weak-link gate occupies a slot on
// both of its chains). capacity ≤ 0 means unlimited, recovering
// ParallelTime exactly.
//
// Scheduling is deterministic greedy list scheduling: gates become ready
// when their qubit predecessors finish and start in gate-id order whenever
// every chain they touch has a free slot.
func ParallelTimeConstrained(c *circuit.Circuit, l *ti.Layout, lat Latencies, capacity int) (float64, error) {
	if err := lat.Validate(); err != nil {
		return 0, err
	}
	if c.NumQubits() > l.NumQubits() {
		return 0, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	if capacity <= 0 {
		return ParallelTime(c, l, lat), nil
	}
	n := c.NumGates()
	if n == 0 {
		return 0, nil
	}

	// Dependency bookkeeping: preds[i] counts unfinished predecessors;
	// succs[i] lists dependents.
	preds := make([]int, n)
	succs := make([][]int, n)
	last := make([]int, c.NumQubits())
	for i := range last {
		last[i] = -1
	}
	for _, g := range c.Gates() {
		seen := map[int]bool{}
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 && !seen[p] {
				seen[p] = true
				preds[g.ID]++
				succs[p] = append(succs[p], g.ID)
			}
		}
		for _, q := range g.Qubits {
			last[q] = g.ID
		}
	}

	chainsOf := func(g circuit.Gate) []int {
		a := l.ChainOf(g.Qubits[0])
		if len(g.Qubits) == 1 {
			return []int{a}
		}
		b := l.ChainOf(g.Qubits[1])
		if a == b {
			return []int{a}
		}
		return []int{a, b}
	}

	inUse := make([]int, l.Device().NumChains())
	type running struct {
		finish float64
		id     int
	}
	var active []running // kept sorted by (finish, id)
	ready := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if preds[id] == 0 {
			ready = append(ready, id)
		}
	}
	started := make([]bool, n)
	now := 0.0
	makespan := 0.0
	remaining := n

	startEligible := func() {
		// Attempt to start ready gates in id order.
		sort.Ints(ready)
		next := ready[:0]
		for _, id := range ready {
			g := c.Gate(id)
			chs := chainsOf(g)
			fits := true
			for _, ch := range chs {
				if inUse[ch] >= capacity {
					fits = false
					break
				}
			}
			if !fits {
				next = append(next, id)
				continue
			}
			for _, ch := range chs {
				inUse[ch]++
			}
			started[id] = true
			fin := now + lat.GateLatency(g, l)
			active = append(active, running{finish: fin, id: id})
			if fin > makespan {
				makespan = fin
			}
		}
		ready = next
		sort.Slice(active, func(i, j int) bool {
			if active[i].finish != active[j].finish {
				return active[i].finish < active[j].finish
			}
			return active[i].id < active[j].id
		})
	}

	startEligible()
	for remaining > 0 {
		if len(active) == 0 {
			// No gate can run: with capacity ≥ 1 this cannot happen for a
			// well-formed circuit, but guard against infinite loops.
			return 0, fmt.Errorf("perf: constrained scheduler deadlocked with %d gates left", remaining)
		}
		// Advance to the earliest finish; retire every gate ending then.
		now = active[0].finish
		for len(active) > 0 && active[0].finish == now {
			done := active[0]
			active = active[1:]
			remaining--
			g := c.Gate(done.id)
			for _, ch := range chainsOf(g) {
				inUse[ch]--
			}
			for _, s := range succs[done.id] {
				preds[s]--
				if preds[s] == 0 && !started[s] {
					ready = append(ready, s)
				}
			}
		}
		startEligible()
	}
	return makespan, nil
}
