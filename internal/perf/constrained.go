package perf

import (
	"fmt"
	"sort"

	"velociti/internal/circuit"
	"velociti/internal/ti"
)

// The paper's parallel model assumes a chain can drive arbitrarily many
// gates at once; real trapped-ion systems are limited by their control
// hardware — the paper itself notes that published systems address ions
// through a 32-channel AOM (§II-B), and driving several simultaneous gates
// multiplexes those channels. ParallelTimeConstrained extends the parallel
// model with a per-chain concurrency budget: at most `capacity` gates may
// execute on a chain at any instant (a weak-link gate occupies a slot on
// both of its chains). capacity ≤ 0 means unlimited, recovering
// ParallelTime exactly.
//
// Scheduling is deterministic greedy list scheduling: gates become ready
// when their qubit predecessors finish and start in gate-id order whenever
// every chain they touch has a free slot.
func ParallelTimeConstrained(c *circuit.Circuit, l *ti.Layout, lat Latencies, capacity int) (float64, error) {
	if err := lat.Validate(); err != nil {
		return 0, err
	}
	if c.NumQubits() > l.NumQubits() {
		return 0, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	if capacity <= 0 {
		return ParallelTime(c, l, lat), nil
	}
	if c.NumGates() == 0 {
		return 0, nil
	}
	return newConstrainedSim(c, l, lat).run(capacity)
}

// ParallelTimeConstrainedAll prices the constrained model at every capacity
// level of one (circuit, layout, latencies) triple in a single call: the
// dependency bookkeeping — the predecessor/successor scan and the per-gate
// chain and latency tables — is built once and the event-driven schedule
// replays per level over reused buffers. Entry j exactly equals
// ParallelTimeConstrained(c, l, lat, capacities[j]): each replay is the
// same deterministic greedy list scheduling over the same structure.
func ParallelTimeConstrainedAll(c *circuit.Circuit, l *ti.Layout, lat Latencies, capacities []int) ([]float64, error) {
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if c.NumQubits() > l.NumQubits() {
		return nil, fmt.Errorf("perf: circuit has %d qubits but layout places only %d", c.NumQubits(), l.NumQubits())
	}
	out := make([]float64, len(capacities))
	if len(capacities) == 0 {
		return out, nil
	}
	var sim *constrainedSim
	for j, capacity := range capacities {
		switch {
		case capacity <= 0:
			out[j] = ParallelTime(c, l, lat)
		case c.NumGates() == 0:
			out[j] = 0
		default:
			if sim == nil {
				sim = newConstrainedSim(c, l, lat)
			}
			t, err := sim.run(capacity)
			if err != nil {
				return nil, err
			}
			out[j] = t
		}
	}
	return out, nil
}

// constrainedSim holds the capacity-independent structure of one constrained
// scheduling problem plus reusable per-run state, so several capacity levels
// replay the event loop without rebuilding the dependency graph.
type constrainedSim struct {
	c   *circuit.Circuit
	n   int
	lat Latencies

	preds0 []int   // pristine predecessor counts
	succs  [][]int // dependents per gate
	chainA []int   // first chain of each gate
	chainB []int   // second chain, or -1 when the gate stays on one chain
	gLat   []float64

	numChains int

	// Per-run buffers, reset by run.
	preds   []int
	inUse   []int
	started []bool
	ready   []int
	active  []constrainedRunning
}

type constrainedRunning struct {
	finish float64
	id     int
}

func newConstrainedSim(c *circuit.Circuit, l *ti.Layout, lat Latencies) *constrainedSim {
	n := c.NumGates()
	s := &constrainedSim{
		c:         c,
		n:         n,
		lat:       lat,
		preds0:    make([]int, n),
		succs:     make([][]int, n),
		chainA:    make([]int, n),
		chainB:    make([]int, n),
		gLat:      make([]float64, n),
		numChains: l.Device().NumChains(),
		preds:     make([]int, n),
		inUse:     make([]int, l.Device().NumChains()),
		started:   make([]bool, n),
		ready:     make([]int, 0, n),
	}
	last := make([]int, c.NumQubits())
	for i := range last {
		last[i] = -1
	}
	for _, g := range c.Gates() {
		seen := map[int]bool{}
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 && !seen[p] {
				seen[p] = true
				s.preds0[g.ID]++
				s.succs[p] = append(s.succs[p], g.ID)
			}
		}
		for _, q := range g.Qubits {
			last[q] = g.ID
		}
		a := l.ChainOf(g.Qubits[0])
		b := -1
		if len(g.Qubits) == 2 {
			if cb := l.ChainOf(g.Qubits[1]); cb != a {
				b = cb
			}
		}
		s.chainA[g.ID] = a
		s.chainB[g.ID] = b
		s.gLat[g.ID] = lat.GateLatency(g, l)
	}
	return s
}

// run replays the event-driven schedule for one capacity level.
func (s *constrainedSim) run(capacity int) (float64, error) {
	copy(s.preds, s.preds0)
	for i := range s.inUse {
		s.inUse[i] = 0
	}
	for i := range s.started {
		s.started[i] = false
	}
	ready := s.ready[:0]
	for id := 0; id < s.n; id++ {
		if s.preds[id] == 0 {
			ready = append(ready, id)
		}
	}
	active := s.active[:0]
	now := 0.0
	makespan := 0.0
	remaining := s.n

	startEligible := func() {
		// Attempt to start ready gates in id order.
		sort.Ints(ready)
		next := ready[:0]
		for _, id := range ready {
			fits := s.inUse[s.chainA[id]] < capacity
			if fits && s.chainB[id] >= 0 {
				fits = s.inUse[s.chainB[id]] < capacity
			}
			if !fits {
				next = append(next, id)
				continue
			}
			s.inUse[s.chainA[id]]++
			if s.chainB[id] >= 0 {
				s.inUse[s.chainB[id]]++
			}
			s.started[id] = true
			fin := now + s.gLat[id]
			active = append(active, constrainedRunning{finish: fin, id: id})
			if fin > makespan {
				makespan = fin
			}
		}
		ready = next
		sort.Slice(active, func(i, j int) bool {
			if active[i].finish != active[j].finish {
				return active[i].finish < active[j].finish
			}
			return active[i].id < active[j].id
		})
	}

	startEligible()
	for remaining > 0 {
		if len(active) == 0 {
			// No gate can run: with capacity ≥ 1 this cannot happen for a
			// well-formed circuit, but guard against infinite loops.
			return 0, fmt.Errorf("perf: constrained scheduler deadlocked with %d gates left", remaining)
		}
		// Advance to the earliest finish; retire every gate ending then.
		now = active[0].finish
		for len(active) > 0 && active[0].finish == now {
			done := active[0]
			active = active[1:]
			remaining--
			s.inUse[s.chainA[done.id]]--
			if s.chainB[done.id] >= 0 {
				s.inUse[s.chainB[done.id]]--
			}
			for _, nx := range s.succs[done.id] {
				s.preds[nx]--
				if s.preds[nx] == 0 && !s.started[nx] {
					ready = append(ready, nx)
				}
			}
		}
		startEligible()
	}
	s.ready = ready[:0]
	s.active = active[:0]
	return makespan, nil
}
