package perf_test

import (
	"reflect"
	"sync"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/workload"
)

// sweepLats builds the α-sweep timing models the kernel is checked under,
// matching how expt's scaling panels vary only WeakPenalty.
func sweepLats(alphas []float64) []perf.Latencies {
	lats := make([]perf.Latencies, len(alphas))
	for i, a := range alphas {
		lats[i] = perf.DefaultLatencies()
		lats[i].WeakPenalty = a
	}
	return lats
}

// checkKernel pins the stage-split API against the classic path for one
// placed circuit: Bind+Time ≡ Evaluate field for field, and TimeAll lanes ≡
// the corresponding Time calls.
func checkKernel(t *testing.T, tag string, c *circuit.Circuit, l *ti.Layout, lats []perf.Latencies) {
	t.Helper()
	e := perf.NewEvaluator(c)
	b, err := e.Bind(l)
	if err != nil {
		t.Fatalf("%s: Bind: %v", tag, err)
	}
	want := make([]perf.Result, len(lats))
	for i, lat := range lats {
		want[i], err = e.Evaluate(l, lat)
		if err != nil {
			t.Fatalf("%s: Evaluate: %v", tag, err)
		}
		got, err := b.Time(lat)
		if err != nil {
			t.Fatalf("%s: Time: %v", tag, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("%s α=%v: Bind+Time =\n%+v\nEvaluate =\n%+v", tag, lat.WeakPenalty, got, want[i])
		}
	}
	if b.WeakGates() != want[0].WeakGates || b.LinksUsed() != want[0].LinksUsed {
		t.Fatalf("%s: binding counts (%d, %d) disagree with Evaluate (%d, %d)",
			tag, b.WeakGates(), b.LinksUsed(), want[0].WeakGates, want[0].LinksUsed)
	}
	all, err := b.TimeAll(lats)
	if err != nil {
		t.Fatalf("%s: TimeAll: %v", tag, err)
	}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("%s: TimeAll lanes diverge from repeated Evaluate\n got %+v\nwant %+v", tag, all, want)
	}
	viaEval, err := e.EvaluateAll(l, lats)
	if err != nil {
		t.Fatalf("%s: EvaluateAll: %v", tag, err)
	}
	if !reflect.DeepEqual(viaEval, want) {
		t.Fatalf("%s: EvaluateAll diverges from repeated Evaluate", tag)
	}
}

// TestEvaluateAllMatchesRepeatedEvaluate is the kernel's headline property:
// over random circuits, placements, and α sweeps of varying width, every
// lane of the one-pass kernel equals the independent single-model DP bit
// for bit, critical path included.
func TestEvaluateAllMatchesRepeatedEvaluate(t *testing.T) {
	r := stats.NewRand(1234)
	alphaPool := []float64{2.0, 1.8, 1.6, 1.4, 1.2, 1.0}
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		gates := r.Intn(300)
		frac := r.Float64()
		c := genc(t)(workload.RandomCircuit(n, gates, frac, int64(1000+trial)))
		d, err := ti.DeviceFor(n, 4+r.Intn(13), ti.Ring)
		if err != nil {
			t.Fatal(err)
		}
		l, err := placement.Random{}.Place(d, n, r)
		if err != nil {
			t.Fatal(err)
		}
		nl := 1 + r.Intn(len(alphaPool))
		checkKernel(t, c.Name, c, l, sweepLats(alphaPool[:nl]))
	}
}

// TestKernelAcrossPlacers drives the property through every gate placer
// over spec workloads, the same coverage the evaluator equivalence tests
// use.
func TestKernelAcrossPlacers(t *testing.T) {
	qv, err := workload.QuantumVolume(24)
	if err != nil {
		t.Fatal(err)
	}
	specs := []circuit.Spec{workload.Random(16, 60), qv}
	lats := sweepLats([]float64{2.0, 1.5, 1.0})
	lat := perf.DefaultLatencies()
	for _, placer := range schedule.All(lat) {
		for si, spec := range specs {
			r := stats.NewRand(int64(300 + si))
			d, err := ti.DeviceFor(spec.Qubits, 8, ti.Ring)
			if err != nil {
				t.Fatal(err)
			}
			l, err := placement.Random{}.Place(d, spec.Qubits, r)
			if err != nil {
				t.Fatal(err)
			}
			c, err := placer.Place(spec, l, r)
			if err != nil {
				t.Fatal(err)
			}
			checkKernel(t, spec.Name+"/"+placer.Name(), c, l, lats)
		}
	}
}

// TestKernelDegenerateCircuits covers the sizes the DP special-cases: no
// gates, one gate, 1-qubit-only circuits, and repeated weak 2-qubit gates.
func TestKernelDegenerateCircuits(t *testing.T) {
	d, err := ti.DeviceFor(4, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	lats := sweepLats([]float64{2.0, 1.0})

	empty := circuit.New("empty", 4)
	checkKernel(t, "empty", empty, l, lats)

	oneQOnly := circuit.New("oneq", 4)
	oneQOnly.H(0)
	oneQOnly.H(1)
	oneQOnly.H(0)
	checkKernel(t, "oneq", oneQOnly, l, lats)

	pair := circuit.New("pair", 4)
	pair.CX(0, 3)
	pair.CX(0, 3)
	checkKernel(t, "pair", pair, l, lats)
}

// TestKernelValidation pins the stage API's error contract: oversized
// circuits fail at Bind, bad timing models fail at Time/TimeAll, and an
// empty sweep is rejected.
func TestKernelValidation(t *testing.T) {
	c := genc(t)(workload.RandomCircuit(8, 20, 0.5, 1))
	e := perf.NewEvaluator(c)

	d4, err := ti.DeviceFor(4, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l4, err := placement.Sequential{}.Place(d4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Bind(l4); err == nil {
		t.Fatal("expected Bind error for circuit wider than layout")
	}

	d8, err := ti.DeviceFor(8, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l8, err := placement.Sequential{}.Place(d8, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Bind(l8)
	if err != nil {
		t.Fatal(err)
	}
	bad := perf.DefaultLatencies()
	bad.WeakPenalty = 0.5
	if _, err := b.Time(bad); err == nil {
		t.Fatal("expected latency validation error from Time")
	}
	if _, err := b.TimeAll([]perf.Latencies{perf.DefaultLatencies(), bad}); err == nil {
		t.Fatal("expected latency validation error from TimeAll")
	}
	if _, err := b.TimeAll(nil); err == nil {
		t.Fatal("expected error for empty sweep")
	}
}

// TestBindingConcurrentTimeAll shares one binding across goroutines — the
// sweep engine's access pattern — under the race detector, checking lanes
// stay equal to the sequential reference.
func TestBindingConcurrentTimeAll(t *testing.T) {
	c := genc(t)(workload.RandomCircuit(16, 120, 0.2, 3))
	d, err := ti.DeviceFor(16, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(5)
	l, err := placement.Random{}.Place(d, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	lats := sweepLats([]float64{2.0, 1.8, 1.6, 1.4, 1.2, 1.0})
	b, err := perf.NewEvaluator(c).Bind(l)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.TimeAll(lats)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := range errs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got, err := b.TimeAll(lats)
				if err != nil {
					errs[w] = err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs[w] = errMismatch
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", w, err)
		}
	}
}
