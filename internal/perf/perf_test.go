package perf

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/ti"
)

// fig3 builds the paper's Figure 3 example: 7 qubits across two chains
// (q1–q4 on chain A, q5–q7 on chain B, 0-indexed here as q0–q6), six
// 2-qubit gates, one weak link joining q4 (0-indexed q3) and q5 (q4).
func fig3(t *testing.T) (*circuit.Circuit, *ti.Layout) {
	t.Helper()
	c := circuit.New("fig3", 7)
	c.CX(0, 1) // q1q2 (start node)
	c.CX(2, 3) // q3q4 (start node)
	c.CX(5, 6) // q6q7 (start node)
	c.CX(3, 4) // q4q5 — crosses the weak link
	c.CX(4, 5) // q5q6
	c.CX(1, 2) // q2q3
	d, err := ti.NewDevice(4, 2, ti.Line)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ti.NewLayout(d, [][]int{{0, 1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	return c, l
}

func TestDefaultLatenciesMatchTableIII(t *testing.T) {
	lat := DefaultLatencies()
	if lat.OneQubit != 1 || lat.TwoQubit != 100 || lat.WeakPenalty != 2 {
		t.Fatalf("defaults = %+v, want Table III values", lat)
	}
	if err := lat.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLatenciesValidate(t *testing.T) {
	bad := []Latencies{
		{OneQubit: -1, TwoQubit: 100, WeakPenalty: 2},
		{OneQubit: 1, TwoQubit: 0, WeakPenalty: 2},
		{OneQubit: 1, TwoQubit: 100, WeakPenalty: 0.5},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, l)
		}
	}
	ok := Latencies{OneQubit: 0, TwoQubit: 50, WeakPenalty: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("α=1 (no penalty) should be valid: %v", err)
	}
}

func TestGateLatencyClasses(t *testing.T) {
	c, l := fig3(t)
	lat := DefaultLatencies()
	// Intra-chain 2q gate.
	if got := lat.GateLatency(c.Gate(0), l); got != 100 {
		t.Errorf("intra-chain 2q latency = %v, want 100", got)
	}
	// Weak-link gate: α·γ.
	if got := lat.GateLatency(c.Gate(3), l); got != 200 {
		t.Errorf("weak-link latency = %v, want 200", got)
	}
	// 1-qubit gate.
	c2 := circuit.New("t", 7)
	c2.H(0)
	if got := lat.GateLatency(c2.Gate(0), l); got != 1 {
		t.Errorf("1q latency = %v, want 1", got)
	}
}

func TestSerialTimeFig3(t *testing.T) {
	c, l := fig3(t)
	lat := DefaultLatencies()
	// q=0, p=6, w=1: Γ = 1·2·100 + 5·100 = 700.
	if got := SerialTime(c, l, lat); got != 700 {
		t.Fatalf("serial = %v, want 700", got)
	}
}

func TestSerialTimeFromCountsMatchesEquation(t *testing.T) {
	lat := Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: 1.5}
	// t = q·δ + w·α·γ + (p−w)·γ = 10 + 3·150 + 7·100 = 1160.
	if got := SerialTimeFromCounts(10, 10, 3, lat); got != 1160 {
		t.Fatalf("serial from counts = %v, want 1160", got)
	}
}

// The paper's worked example: the parallel latency of Figure 3 is
// (1+α)γ + γ (§IV-D).
func TestParallelTimeFig3MatchesPaper(t *testing.T) {
	c, l := fig3(t)
	for _, alpha := range []float64{2.0, 1.8, 1.4, 1.0} {
		lat := Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: alpha}
		want := (1+alpha)*100 + 100
		if got := ParallelTime(c, l, lat); math.Abs(got-want) > 1e-9 {
			t.Errorf("α=%v: parallel = %v, want %v", alpha, got, want)
		}
	}
}

func TestBuildGateGraphFig3Structure(t *testing.T) {
	c, l := fig3(t)
	lat := DefaultLatencies()
	g := BuildGateGraph(c, l, lat)
	if g.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6", g.NumNodes())
	}
	// Three start nodes, exactly the gates acting on fresh qubits.
	starts := g.StartNodes()
	if !reflect.DeepEqual(starts, []int{0, 1, 2}) {
		t.Fatalf("start nodes = %v, want [0 1 2]", starts)
	}
	// Edge q3q4 -> q4q5 weighs (1+α)γ = 300: destination is a weak-link
	// gate (αγ) and the source is a start node (+γ).
	if w, ok := g.Weight(1, 3); !ok || w != 300 {
		t.Fatalf("weight(q3q4→q4q5) = %v,%v, want 300", w, ok)
	}
	// Edge q4q5 -> q5q6 weighs γ = 100: source is not a start node.
	if w, ok := g.Weight(3, 4); !ok || w != 100 {
		t.Fatalf("weight(q4q5→q5q6) = %v,%v, want 100", w, ok)
	}
	// Longest path through the graph equals the paper's (1+α)γ + γ = 400.
	res, err := g.LongestPath()
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != 400 {
		t.Fatalf("longest path = %v, want 400", res.Length)
	}
	// SSA labels on nodes (paper's Figure 3 labels, 0-indexed qubits).
	if g.Label(3) != "q3q4" {
		t.Fatalf("node 3 label = %q", g.Label(3))
	}
}

func TestParallelMatchesGraphLongestPath(t *testing.T) {
	// Property: DP finish-time computation equals the paper's
	// edge-weighted longest path, accounting for isolated gates.
	r := rand.New(rand.NewSource(77))
	lat := DefaultLatencies()
	for trial := 0; trial < 100; trial++ {
		n := 4 + r.Intn(12)
		d, err := ti.NewDevice(4, (n+3)/4, ti.Ring)
		if err != nil {
			t.Fatal(err)
		}
		chains := make([][]int, d.NumChains())
		for q := 0; q < n; q++ {
			chains[q/4] = append(chains[q/4], q)
		}
		l, err := ti.NewLayout(d, chains)
		if err != nil {
			t.Fatal(err)
		}
		c := circuit.New("rand", n)
		pairs := l.LegalPairs()
		for k := 0; k < r.Intn(30); k++ {
			if r.Intn(4) == 0 {
				c.X(r.Intn(n))
			} else {
				p := pairs[r.Intn(len(pairs))]
				c.CX(p[0], p[1])
			}
		}
		g := BuildGateGraph(c, l, lat)
		lp, err := g.LongestPath()
		if err != nil {
			t.Fatal(err)
		}
		want := lp.Length
		// Gates with no dependency edges contribute their own latency.
		for _, gate := range c.Gates() {
			if g.InDegree(gate.ID) == 0 && g.OutDegree(gate.ID) == 0 {
				if lt := lat.GateLatency(gate, l); lt > want {
					want = lt
				}
			}
		}
		if got := ParallelTime(c, l, lat); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: DP=%v graph=%v", trial, got, want)
		}
	}
}

func TestParallelNeverExceedsSerial(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	lat := DefaultLatencies()
	for trial := 0; trial < 100; trial++ {
		n := 4 + r.Intn(20)
		d, _ := ti.NewDevice(8, (n+7)/8, ti.Ring)
		chains := make([][]int, d.NumChains())
		for q := 0; q < n; q++ {
			chains[q/8] = append(chains[q/8], q)
		}
		l, _ := ti.NewLayout(d, chains)
		c := circuit.New("rand", n)
		pairs := l.LegalPairs()
		for k := 0; k < 1+r.Intn(40); k++ {
			if r.Intn(3) == 0 {
				c.X(r.Intn(n))
			} else {
				p := pairs[r.Intn(len(pairs))]
				c.CX(p[0], p[1])
			}
		}
		s := SerialTimePerGate(c, l, lat)
		p := ParallelTime(c, l, lat)
		if p > s+1e-9 {
			t.Fatalf("trial %d: parallel %v > per-gate serial %v", trial, p, s)
		}
		// Eq. 1–2's serial time uses w = links used, so it can fall below
		// the per-gate worst case but never above it.
		if eq := SerialTime(c, l, lat); eq > s+1e-9 {
			t.Fatalf("trial %d: Eq.1-2 serial %v exceeds per-gate serial %v", trial, eq, s)
		}
		if c.NumGates() > 0 && p <= 0 {
			t.Fatalf("trial %d: non-empty circuit has parallel time %v", trial, p)
		}
	}
}

func TestFullySerialChainEqualsSerialModel(t *testing.T) {
	// A circuit where every gate depends on the previous one (all gates on
	// the same pair) has no parallelism: parallel == serial.
	d, _ := ti.NewDevice(4, 1, ti.Ring)
	l, _ := ti.NewLayout(d, [][]int{{0, 1}})
	c := circuit.New("serial", 2)
	for i := 0; i < 10; i++ {
		c.CX(0, 1)
	}
	lat := DefaultLatencies()
	s, p := SerialTime(c, l, lat), ParallelTime(c, l, lat)
	if s != p || s != 1000 {
		t.Fatalf("serial=%v parallel=%v, want both 1000", s, p)
	}
}

func TestSerialModelsDivergeOnRepeatedWeakGates(t *testing.T) {
	// Ten gates across the same weak link: Eq. 1–2 charges α·γ once
	// (w = 1 link used), the per-gate model charges every crossing, and
	// the parallel model — fully serialized on the shared qubits —
	// matches the per-gate time.
	d, _ := ti.NewDevice(2, 2, ti.Line)
	l, _ := ti.NewLayout(d, [][]int{{0, 1}, {2, 3}})
	c := circuit.New("weak-chain", 4)
	for i := 0; i < 10; i++ {
		c.CX(1, 2)
	}
	lat := DefaultLatencies()
	if eq := SerialTime(c, l, lat); eq != 1*200+9*100 {
		t.Fatalf("Eq.1-2 serial = %v, want 1100 (w = 1 link)", eq)
	}
	if pg := SerialTimePerGate(c, l, lat); pg != 2000 {
		t.Fatalf("per-gate serial = %v, want 2000", pg)
	}
	if p := ParallelTime(c, l, lat); p != 2000 {
		t.Fatalf("parallel = %v, want 2000 (no parallelism available)", p)
	}
}

func TestLinksUsedAdjacencyOnly(t *testing.T) {
	// Four single-qubit chains in a line. A gate between the end chains
	// is multi-hop: it marks no link (w counts direct link usage only,
	// keeping Eq. 1-2 below the per-gate bound); an adjacent-chain gate
	// marks exactly one.
	d, _ := ti.NewDevice(1, 4, ti.Line)
	l, _ := ti.NewLayout(d, [][]int{{0}, {1}, {2}, {3}})
	c := circuit.New("far", 4)
	c.CX(0, 3)
	if got := LinksUsed(c, l); got != 0 {
		t.Fatalf("LinksUsed = %d, want 0 for a non-adjacent pair", got)
	}
	lat := DefaultLatencies()
	if eq := SerialTime(c, l, lat); eq != 100 {
		t.Fatalf("serial = %v, want 100 (w = 0)", eq)
	}
	// The per-gate model still charges the cross-chain penalty.
	if pg := SerialTimePerGate(c, l, lat); pg != 200 {
		t.Fatalf("per-gate serial = %v, want 200", pg)
	}
	c.CX(1, 2) // adjacent chains: marks the single joining link
	if got := LinksUsed(c, l); got != 1 {
		t.Fatalf("LinksUsed = %d, want 1 after adjacent gate", got)
	}
	// Two-chain ring: both links join the same pair, but one gate marks
	// only one link, keeping w below the cross-gate count.
	d2, _ := ti.NewDevice(1, 2, ti.Ring)
	l2, _ := ti.NewLayout(d2, [][]int{{0}, {1}})
	c2 := circuit.New("pair", 2)
	c2.CX(0, 1)
	if got := LinksUsed(c2, l2); got != 1 {
		t.Fatalf("2-chain ring LinksUsed = %d, want 1", got)
	}
}

func TestWeakGatesAndLinksUsed(t *testing.T) {
	c, l := fig3(t)
	if w := WeakGates(c, l); w != 1 {
		t.Errorf("WeakGates = %d, want 1", w)
	}
	if u := LinksUsed(c, l); u != 1 {
		t.Errorf("LinksUsed = %d, want 1", u)
	}
	// Repeat the weak-link gate: w counts gates, links used stays 1.
	c.CX(3, 4)
	if w := WeakGates(c, l); w != 2 {
		t.Errorf("WeakGates after repeat = %d, want 2", w)
	}
	if u := LinksUsed(c, l); u != 1 {
		t.Errorf("LinksUsed after repeat = %d, want 1", u)
	}
}

func TestEvaluateFig3(t *testing.T) {
	c, l := fig3(t)
	res, err := Evaluate(c, l, DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if res.SerialMicros != 700 || res.ParallelMicros != 400 {
		t.Fatalf("result = %+v", res)
	}
	if math.Abs(res.Speedup()-1.75) > 1e-9 {
		t.Fatalf("speedup = %v, want 1.75", res.Speedup())
	}
	if res.WeakGates != 1 || res.LinksUsed != 1 {
		t.Fatalf("weak stats = %d/%d", res.WeakGates, res.LinksUsed)
	}
	want := []string{"q2q3", "q3q4", "q4q5"}
	// Critical path is q3q4 → q4q5 → q5q6 (0-indexed labels).
	if len(res.CriticalPath) != 3 || res.CriticalPath[0] != "q2q3" {
		// q3q4 in 1-indexed naming is "q2q3" in 0-indexed labels.
		t.Fatalf("critical path = %v, want %v", res.CriticalPath, want)
	}
}

func TestEvaluateValidates(t *testing.T) {
	c, l := fig3(t)
	if _, err := Evaluate(c, l, Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: 0}); err == nil {
		t.Fatalf("invalid latencies should fail")
	}
	big := circuit.New("big", 50)
	if _, err := Evaluate(big, l, DefaultLatencies()); err == nil {
		t.Fatalf("circuit wider than layout should fail")
	}
}

func TestEvaluateEmptyCircuit(t *testing.T) {
	d, _ := ti.NewDevice(4, 1, ti.Ring)
	l, _ := ti.NewLayout(d, [][]int{{0}})
	c := circuit.New("empty", 1)
	res, err := Evaluate(c, l, DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if res.SerialMicros != 0 || res.ParallelMicros != 0 || res.Speedup() != 1 {
		t.Fatalf("empty result = %+v", res)
	}
	if res.CriticalPath != nil {
		t.Fatalf("empty circuit should have nil critical path")
	}
}

func TestCriticalPathOrderingAndMembership(t *testing.T) {
	c, l := fig3(t)
	lat := DefaultLatencies()
	path := CriticalPath(c, l, lat)
	// Path must be q3q4 (label "q2q3"), q4q5 ("q3q4"), q5q6 ("q4q5").
	want := []string{"q2q3", "q3q4", "q4q5"}
	if !reflect.DeepEqual(path, want) {
		t.Fatalf("critical path = %v, want %v", path, want)
	}
}

func TestChainUtilization(t *testing.T) {
	c, l := fig3(t)
	lat := DefaultLatencies()
	util := ChainUtilization(c, l, lat)
	if len(util) != 2 {
		t.Fatalf("util length = %d", len(util))
	}
	// Chain 0 runs gates q1q2, q3q4, q2q3, q4q5 → 100+100+100+200 = 500µs
	// busy over a 400µs window, clamped to 1.0.
	if util[0] != 1.0 {
		t.Errorf("chain0 utilization = %v, want 1.0 (clamped)", util[0])
	}
	// Chain 1 runs q6q7, q4q5, q5q6 → 100+200+100 = 400 over 400 = 1.0.
	if math.Abs(util[1]-1.0) > 1e-9 {
		t.Errorf("chain1 utilization = %v, want 1.0", util[1])
	}
	// Empty circuit → all zero.
	empty := circuit.New("e", 7)
	for _, u := range ChainUtilization(empty, l, lat) {
		if u != 0 {
			t.Errorf("empty circuit utilization should be 0, got %v", u)
		}
	}
}

func TestAlphaOneRemovesWeakPenalty(t *testing.T) {
	c, l := fig3(t)
	lat := Latencies{OneQubit: 1, TwoQubit: 100, WeakPenalty: 1}
	// With α=1 every 2q gate costs γ; serial = 6γ = 600.
	if got := SerialTime(c, l, lat); got != 600 {
		t.Fatalf("serial @α=1 = %v, want 600", got)
	}
	if got := ParallelTime(c, l, lat); got != 300 {
		t.Fatalf("parallel @α=1 = %v, want 300 ((1+1)γ+γ)", got)
	}
}

func TestSpeedupZeroParallel(t *testing.T) {
	r := Result{SerialMicros: 10, ParallelMicros: 0}
	if r.Speedup() != 0 {
		t.Fatalf("degenerate speedup = %v", r.Speedup())
	}
}

func TestGraphDOTHasStartNodes(t *testing.T) {
	c, l := fig3(t)
	g := BuildGateGraph(c, l, DefaultLatencies())
	dot := g.DOT("fig3")
	if n := strings.Count(dot, "doublecircle"); n != 3 {
		t.Fatalf("DOT should mark 3 start nodes, got %d", n)
	}
}
