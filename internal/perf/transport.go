package perf

// This file is the pricing kernel of the shuttle timing backend. Where
// the weak-link model charges a cross-chain gate a flat α·γ, the shuttle
// model charges what the QCCD hardware actually does: split the ion out
// of its chain, move it one weak-link segment per hop toward the target
// chain, merge, recool, and only then run the 2-qubit gate at the local
// γ. The per-gate paths are layout-dependent but latency-independent, so
// they are attached to the Binding once (AttachTransport, the backend's
// Prepare hook); TimeTransport/TimeTransportAll then price any number of
// timing models against the attached plan with the same multi-lane,
// pooled-scratch shape as Binding.TimeAll.
//
// Contention: two concurrent transports cannot occupy one inter-chain
// segment, so the kernel serializes them — each segment tracks a
// per-lane busy-until time, a transport starts no earlier than the
// latest busy-until of the segments it crosses, and it reserves them
// until its merge+recool completes. Reservation is skipped entirely when
// a gate's transport overhead is zero, which is what makes the zero-cost
// shuttle backend bit-identical to the weak-link model at α = 1 (the
// equivalence the property tests pin): the recurrence degenerates to
// f = ready + d with the α = 1 latency table.

import (
	"fmt"

	"velociti/internal/ti"
	"velociti/internal/verr"
)

// TransportCosts prices the shuttle primitives, in microseconds. It is
// internal/shuttle's Params re-expressed at the kernel boundary so perf
// does not import the shuttle package.
type TransportCosts struct {
	// SplitMicros splits the ion out of its source chain.
	SplitMicros float64
	// MovePerHopMicros moves the ion across one weak-link segment.
	MovePerHopMicros float64
	// MergeMicros merges the ion into the destination chain.
	MergeMicros float64
	// RecoolMicros re-cools the destination chain after the merge.
	RecoolMicros float64
}

// Validate rejects negative or NaN costs with a typed input error.
func (c TransportCosts) Validate() error {
	for _, v := range [...]struct {
		name string
		val  float64
	}{
		{"split", c.SplitMicros},
		{"move-per-hop", c.MovePerHopMicros},
		{"merge", c.MergeMicros},
		{"recool", c.RecoolMicros},
	} {
		if !(v.val >= 0) {
			return verr.Inputf("perf: transport %s cost must be a non-negative number, got %v", v.name, v.val)
		}
	}
	return nil
}

// transportPlan is the layout-dependent, latency-independent transport
// annotation of one binding: for each gate, the weak-link segments its
// cross-chain transport crosses, as CSR rows over segIDs. Local gates
// have empty rows.
type transportPlan struct {
	segStart []int32 // CSR offsets into segIDs, len = NumGates()+1
	segIDs   []int32 // weak-link IDs along each weak gate's path
	numSegs  int     // device segment count; sizes the busy table
}

// AttachTransport computes and attaches the transport plan for the
// layout the binding was built from. It is the shuttle backend's Prepare
// hook: it must run before the binding is published to caches or shared
// across goroutines, and it is idempotent (a second call is a no-op).
// Each weak gate's path is the deterministic shortest weak-link path
// between its operands' chains (ti.Device.PathLinks), looked up once per
// unordered chain pair. A weak gate whose operand chains are
// disconnected is an impossible circuit for this device and surfaces as
// a typed input error — never as a fabricated finite cost.
func (b *Binding) AttachTransport(l *ti.Layout) error {
	if b.transport != nil {
		return nil
	}
	e := b.ev
	d := l.Device()
	tp := &transportPlan{segStart: make([]int32, e.n+1), numSegs: d.MaxWeakLinks()}
	if b.weak == 0 {
		b.transport = tp
		return nil
	}
	nc := d.NumChains()
	chainOf := l.ChainAssignments()
	// Paths are cached per canonical (min, max) chain pair: PathLinks'
	// tie-breaking is direction-dependent, so canonicalizing keeps the
	// priced path independent of operand order within a gate.
	paths := make([][]int32, nc*nc)
	segIDs := make([]int32, 0, b.weak)
	for i := 0; i < e.n; i++ {
		if b.classes[i] == ClassTwoQWeak {
			lo, hi := chainOf[e.qa[i]], chainOf[e.qb[i]]
			if lo > hi {
				lo, hi = hi, lo
			}
			p := paths[lo*nc+hi]
			if p == nil {
				links := d.PathLinks(lo, hi)
				if len(links) == 0 {
					return verr.Inputf("perf: qubits q%d and q%d sit on disconnected chains %d and %d; no shuttle path exists",
						e.qa[i], e.qb[i], chainOf[e.qa[i]], chainOf[e.qb[i]])
				}
				p = make([]int32, len(links))
				for k, wl := range links {
					p[k] = int32(wl.ID)
				}
				paths[lo*nc+hi] = p
			}
			segIDs = append(segIDs, p...)
		}
		tp.segStart[i+1] = int32(len(segIDs))
	}
	tp.segIDs = segIDs
	b.transport = tp
	return nil
}

// growBusy sizes and zeroes the per-(segment, lane) busy-until table.
func (s *sweepScratch) growBusy(n int) []float64 {
	if cap(s.busy) < n {
		s.busy = make([]float64, n)
	}
	s.busy = s.busy[:n]
	for i := range s.busy {
		s.busy[i] = 0
	}
	return s.busy
}

// TimeTransport prices the binding under one timing model with the
// shuttle transport model. It equals TimeTransportAll(costs,
// []Latencies{lat})[0] exactly.
func (b *Binding) TimeTransport(costs TransportCosts, lat Latencies) (Result, error) {
	res, err := b.TimeTransportAll(costs, []Latencies{lat})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// TimeTransportAll prices the binding under every timing model in lats
// with the shuttle transport model, in one multi-lane pass over the gate
// list. Per gate, a weak gate first pays its transport overhead
// (split + hops·move + merge + recool, serialized against every other
// transport crossing a shared segment) and then runs at the LOCAL
// 2-qubit latency γ — the weak penalty α never appears; transport
// replaces it. Lane j of the result equals TimeTransport(costs, lats[j])
// bit for bit at any lane count. SerialMicros is the Eq. 1 serial bound
// at α = 1 plus the total transport overhead; SerialPerGateMicros
// likewise accumulates overhead plus gate latency in gate order.
// AttachTransport must have run first.
func (b *Binding) TimeTransportAll(costs TransportCosts, lats []Latencies) ([]Result, error) {
	tp := b.transport
	if tp == nil {
		return nil, fmt.Errorf("perf: binding has no transport plan; the shuttle backend's Prepare (AttachTransport) must run at bind time")
	}
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	nl := len(lats)
	if nl == 0 {
		return nil, fmt.Errorf("perf: TimeTransportAll requires at least one timing model")
	}
	for _, lat := range lats {
		if err := lat.Validate(); err != nil {
			return nil, err
		}
	}
	e := b.ev
	w := b.links
	if w > e.twoQGates {
		w = e.twoQGates
	}
	// local[j] is lats[j] with the weak penalty neutralized: transport
	// replaces α, so weak gates run at 1·γ and the serial bound charges
	// the same.
	results := make([]Result, nl)
	luts := make([][numClasses]float64, nl)
	for j, lat := range lats {
		local := lat
		local.WeakPenalty = 1
		luts[j] = classLatencies(local)
		results[j] = Result{
			SerialMicros: SerialTimeFromCounts(e.oneQGates, e.twoQGates, w, local),
			WeakGates:    b.weak,
			LinksUsed:    b.links,
		}
	}
	if e.n == 0 {
		return results, nil
	}

	fixed := costs.SplitMicros + costs.MergeMicros + costs.RecoolMicros
	s := sweepPool.Get().(*sweepScratch)
	s.grow(e.n*nl, e.c.NumQubits())
	busy := s.growBusy(tp.numSegs * nl)
	finish, prev, last := s.finish, s.prev, s.last

	serial := make([]float64, nl)
	total := make([]float64, nl)
	best := make([]int32, nl)
	transportTotal := 0.0

	for i := 0; i < e.n; i++ {
		p0 := last[e.qa[i]]
		p1 := int32(-1)
		if qb := e.qb[i]; qb >= 0 {
			p1 = last[qb]
		}
		class := b.classes[i]
		var segs []int32
		over := 0.0
		if class == ClassTwoQWeak {
			segs = tp.segIDs[tp.segStart[i]:tp.segStart[i+1]]
			over = fixed + float64(len(segs))*costs.MovePerHopMicros
			transportTotal += over
		}
		base := i * nl
		for j := 0; j < nl; j++ {
			ready := 0.0
			pr := int32(-1)
			if p0 >= 0 && finish[int(p0)*nl+j] > ready {
				ready = finish[int(p0)*nl+j]
				pr = p0
			}
			if p1 >= 0 && finish[int(p1)*nl+j] > ready {
				ready = finish[int(p1)*nl+j]
				pr = p1
			}
			d := luts[j][class]
			start := ready
			if over > 0 {
				// Junction contention: the transport cannot enter a segment
				// before the previous transport through it has cleared, and
				// it holds every segment on its path until it completes.
				// Zero-overhead transports reserve nothing — they occupy no
				// segment for any duration, and skipping the busy table is
				// what keeps the zero-cost backend identical to weak-link.
				for _, sg := range segs {
					if v := busy[int(sg)*nl+j]; v > start {
						start = v
					}
				}
			}
			tEnd := start + over
			if over > 0 {
				for _, sg := range segs {
					busy[int(sg)*nl+j] = tEnd
				}
			}
			f := tEnd + d
			finish[base+j] = f
			prev[base+j] = pr
			serial[j] += over + d
			if f > total[j] {
				total[j] = f
				best[j] = int32(i)
			}
		}
		last[e.qa[i]] = int32(i)
		if qb := e.qb[i]; qb >= 0 {
			last[qb] = int32(i)
		}
	}

	labels := e.Labels()
	for j := 0; j < nl; j++ {
		results[j].SerialMicros += transportTotal
		results[j].SerialPerGateMicros = serial[j]
		results[j].ParallelMicros = total[j]
		depth := 0
		for at := best[j]; at != -1; at = prev[int(at)*nl+j] {
			depth++
		}
		path := make([]string, depth)
		for at := best[j]; at != -1; at = prev[int(at)*nl+j] {
			depth--
			path[depth] = labels[at]
		}
		results[j].CriticalPath = path
	}
	sweepPool.Put(s)
	return results, nil
}
