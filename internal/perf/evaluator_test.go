package perf_test

import (
	"reflect"
	"sync"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/schedule"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/workload"
)

// evaluatorAlphas is the weak-link penalty sweep the equivalence property
// is checked under.
var evaluatorAlphas = []float64{1.0, 1.5, 2.0}

// checkEquivalence pins the Evaluator against every legacy entry point for
// one placed circuit.
func checkEquivalence(t *testing.T, tag string, c *circuit.Circuit, l *ti.Layout, lat perf.Latencies) {
	t.Helper()
	e := perf.NewEvaluator(c)

	if got, want := e.ParallelTime(l, lat), perf.ParallelTime(c, l, lat); got != want {
		t.Fatalf("%s: Evaluator.ParallelTime = %v, ParallelTime = %v", tag, got, want)
	}

	g := perf.BuildGateGraph(c, l, lat)
	if got, want := e.NumEdges(), g.NumEdges(); got != want {
		t.Fatalf("%s: Evaluator has %d edges, BuildGateGraph %d", tag, got, want)
	}
	lp, err := g.LongestPath()
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if got := e.LongestPath(l, lat); got != lp.Length {
		t.Fatalf("%s: Evaluator.LongestPath = %v, dag.LongestPath = %v", tag, got, lp.Length)
	}

	want, err := perf.Evaluate(c, l, lat)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	got, err := e.Evaluate(l, lat)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Evaluator.Evaluate =\n%+v\nEvaluate =\n%+v", tag, got, want)
	}
}

// TestEvaluatorMatchesLegacyOnRandomCircuits drives the equivalence
// property over explicit random circuits from internal/workload with
// random placement, across the α sweep.
func TestEvaluatorMatchesLegacyOnRandomCircuits(t *testing.T) {
	r := stats.NewRand(42)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		gates := r.Intn(300)
		frac := r.Float64()
		c := genc(t)(workload.RandomCircuit(n, gates, frac, int64(trial)))
		d, err := ti.DeviceFor(n, 4+r.Intn(13), ti.Ring)
		if err != nil {
			t.Fatal(err)
		}
		l, err := placement.Random{}.Place(d, n, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range evaluatorAlphas {
			lat := perf.DefaultLatencies()
			lat.WeakPenalty = alpha
			checkEquivalence(t, c.Name, c, l, lat)
		}
	}
}

// TestEvaluatorMatchesLegacyAcrossPlacers drives the property through
// every gate placer over spec workloads, across the α sweep.
func TestEvaluatorMatchesLegacyAcrossPlacers(t *testing.T) {
	qv, err := workload.QuantumVolume(24)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := workload.RatioCircuit(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	specs := []circuit.Spec{workload.Random(16, 60), qv, rc}
	for _, alpha := range evaluatorAlphas {
		lat := perf.DefaultLatencies()
		lat.WeakPenalty = alpha
		for _, placer := range schedule.All(lat) {
			for si, spec := range specs {
				r := stats.NewRand(int64(100 + si))
				d, err := ti.DeviceFor(spec.Qubits, 8, ti.Ring)
				if err != nil {
					t.Fatal(err)
				}
				l, err := placement.Random{}.Place(d, spec.Qubits, r)
				if err != nil {
					t.Fatal(err)
				}
				c, err := placer.Place(spec, l, r)
				if err != nil {
					t.Fatal(err)
				}
				tag := spec.Name + "/" + placer.Name()
				checkEquivalence(t, tag, c, l, lat)
			}
		}
	}
}

// TestEvaluatorReuseAcrossLayouts checks the intended usage pattern: one
// evaluator, many randomized placements, results identical to fresh legacy
// evaluations every time.
func TestEvaluatorReuseAcrossLayouts(t *testing.T) {
	c := genc(t)(workload.RandomCircuit(24, 200, 0.3, 7))
	d, err := ti.DeviceFor(24, 6, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	e := perf.NewEvaluator(c)
	lat := perf.DefaultLatencies()
	r := stats.NewRand(9)
	for trial := 0; trial < 25; trial++ {
		l, err := placement.Random{}.Place(d, 24, r)
		if err != nil {
			t.Fatal(err)
		}
		want, err := perf.Evaluate(c, l, lat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(l, lat)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: results diverged", trial)
		}
	}
}

// TestEvaluatorConcurrentUse exercises one shared evaluator from many
// goroutines — the worker-pool runner's access pattern — under the race
// detector.
func TestEvaluatorConcurrentUse(t *testing.T) {
	c := genc(t)(workload.RandomCircuit(16, 120, 0.2, 3))
	d, err := ti.DeviceFor(16, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	e := perf.NewEvaluator(c)
	lat := perf.DefaultLatencies()
	layouts := make([]*ti.Layout, 8)
	want := make([]perf.Result, len(layouts))
	r := stats.NewRand(5)
	for i := range layouts {
		l, err := placement.Random{}.Place(d, 16, r)
		if err != nil {
			t.Fatal(err)
		}
		layouts[i] = l
		want[i], err = perf.Evaluate(c, l, lat)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(layouts))
	for i := range layouts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got, err := e.Evaluate(layouts[i], lat)
				if err != nil {
					errs[i] = err
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					errs[i] = errMismatch
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

var errMismatch = errFixed("evaluator result diverged under concurrency")

type errFixed string

func (e errFixed) Error() string { return string(e) }

// TestEvaluatorEmptyAndTinyCircuits covers the degenerate sizes the DP
// special-cases.
func TestEvaluatorEmptyAndTinyCircuits(t *testing.T) {
	d, err := ti.DeviceFor(4, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	lat := perf.DefaultLatencies()

	empty := circuit.New("empty", 4)
	checkEquivalence(t, "empty", empty, l, lat)

	single := circuit.New("single", 4)
	single.H(0)
	checkEquivalence(t, "single", single, l, lat)

	pair := circuit.New("pair", 4)
	pair.CX(0, 3)
	pair.CX(0, 3)
	checkEquivalence(t, "pair", pair, l, lat)
}

// TestEvaluatorValidation mirrors Evaluate's error contract.
func TestEvaluatorValidation(t *testing.T) {
	c := genc(t)(workload.RandomCircuit(8, 20, 0.5, 1))
	d, err := ti.DeviceFor(4, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Sequential{}.Place(d, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := perf.NewEvaluator(c)
	if _, err := e.Evaluate(l, perf.DefaultLatencies()); err == nil {
		t.Fatal("expected error for circuit wider than layout")
	}
	bad := perf.DefaultLatencies()
	bad.WeakPenalty = 0.5
	d8, err := ti.DeviceFor(8, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l8, err := placement.Sequential{}.Place(d8, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(l8, bad); err == nil {
		t.Fatal("expected latency validation error")
	}
}

// genc unwraps a circuit-generator result, failing the test on error.
func genc(t testing.TB) func(*circuit.Circuit, error) *circuit.Circuit {
	return func(c *circuit.Circuit, err error) *circuit.Circuit {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return c
	}
}
