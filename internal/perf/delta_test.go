package perf_test

// Delta-evaluation bit-exactness: after arbitrary swap sequences, the
// incremental objective must equal a from-scratch evaluation — for the
// weak-link backend that oracle is Evaluator.LongestPath on the
// materialized layout (the paper's model), and for both backends FullCost
// re-derives latencies and edge weights with no incremental state. Runs
// cover multiple seeds and a tiny cone budget that forces the dag-level
// full-recompute fallback.

import (
	"math/rand"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/shuttle"
	"velociti/internal/stats"
	"velociti/internal/ti"
)

// randomCircuit synthesizes a random gate sequence over n qubits.
func randomCircuit(r *rand.Rand, n, oneQ, twoQ int) *circuit.Circuit {
	c := circuit.NewScratch("delta-test", n)
	for oneQ > 0 || twoQ > 0 {
		if twoQ > 0 && (oneQ == 0 || r.Intn(2) == 0) {
			a := r.Intn(n)
			b := r.Intn(n - 1)
			if b >= a {
				b++
			}
			c.CX(a, b)
			twoQ--
			continue
		}
		c.X(r.Intn(n))
		oneQ--
	}
	return c
}

func deltaBackends(t *testing.T) map[string]perf.TimingBackend {
	t.Helper()
	return map[string]perf.TimingBackend{
		"weaklink": perf.WeakLink{},
		"shuttle":  shuttle.Backend{Params: shuttle.Default()},
	}
}

// TestDeltaEvalMatchesFullAfterRandomSwaps is the tentpole property: delta
// ≡ full on randomized swap sequences, both backends, several seeds, and a
// cone budget small enough to exercise the fallback path.
func TestDeltaEvalMatchesFullAfterRandomSwaps(t *testing.T) {
	const qubits, chainLen = 24, 6
	lat := perf.DefaultLatencies()
	for name, backend := range deltaBackends(t) {
		for _, seed := range []int64{1, 5, 99} {
			for _, cone := range []int{0, 2} {
				r := stats.NewRand(seed)
				c := randomCircuit(r, qubits, 40, 120)
				device, err := ti.DeviceFor(qubits, chainLen, ti.Ring)
				if err != nil {
					t.Fatal(err)
				}
				l, err := placement.Random{}.Place(device, qubits, r)
				if err != nil {
					t.Fatal(err)
				}
				ev := perf.NewEvaluator(c)
				de, err := perf.NewDeltaEval(ev, l, backend, lat)
				if err != nil {
					t.Fatal(err)
				}
				if cone > 0 {
					de.SetConeLimit(cone)
				}
				for step := 0; step < 80; step++ {
					a := r.Intn(qubits)
					b := r.Intn(qubits - 1)
					if b >= a {
						b++
					}
					if _, err := de.Swap(a, b); err != nil {
						t.Fatal(err)
					}
					got := de.Cost()
					want, err := de.FullCost()
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("%s seed %d cone %d step %d: delta cost %v, full %v", name, seed, cone, step, got, want)
					}
					if name == "weaklink" {
						ml, err := de.Layout()
						if err != nil {
							t.Fatal(err)
						}
						if oracle := ev.LongestPath(ml, lat); got != oracle {
							t.Fatalf("%s seed %d step %d: delta cost %v, LongestPath oracle %v", name, seed, step, got, oracle)
						}
					}
				}
				if cone == 2 && de.FullRecomputes() == 0 {
					t.Fatalf("%s seed %d: cone limit 2 never fell back to a full recompute", name, seed)
				}
			}
		}
	}
}

// TestDeltaEvalSwapIsInvolution: Swap(a,b) twice restores the assignment
// and the objective bit for bit — the revert path the annealer leans on
// for rejected moves, including deferred (batched) refreshes.
func TestDeltaEvalSwapIsInvolution(t *testing.T) {
	const qubits = 16
	lat := perf.DefaultLatencies()
	r := stats.NewRand(7)
	c := randomCircuit(r, qubits, 20, 60)
	device, err := ti.DeviceFor(qubits, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Random{}.Place(device, qubits, r)
	if err != nil {
		t.Fatal(err)
	}
	de, err := perf.NewDeltaEval(perf.NewEvaluator(c), l, perf.WeakLink{}, lat)
	if err != nil {
		t.Fatal(err)
	}
	initial := de.Cost()
	var asg []int32
	asg = de.ChainAssignments(asg)
	for step := 0; step < 40; step++ {
		a, b := r.Intn(qubits), r.Intn(qubits-1)
		if b >= a {
			b++
		}
		if _, err := de.Swap(a, b); err != nil {
			t.Fatal(err)
		}
		// Deliberately do NOT refresh between the swap and its revert:
		// the dirty sets must merge and cancel.
		if _, err := de.Swap(a, b); err != nil {
			t.Fatal(err)
		}
		if got := de.Cost(); got != initial {
			t.Fatalf("step %d: cost %v after revert, want %v", step, got, initial)
		}
		for q, ch := range de.ChainAssignments(nil) {
			if ch != asg[q] {
				t.Fatalf("step %d: qubit %d on chain %d after revert, want %d", step, q, ch, asg[q])
			}
		}
	}
}

// TestDeltaEvalSwapValidation: out-of-range and identical qubits are typed
// input errors and leave the evaluator untouched.
func TestDeltaEvalSwapValidation(t *testing.T) {
	const qubits = 8
	r := stats.NewRand(3)
	c := randomCircuit(r, qubits, 4, 12)
	device, err := ti.DeviceFor(qubits, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l, err := placement.Random{}.Place(device, qubits, r)
	if err != nil {
		t.Fatal(err)
	}
	de, err := perf.NewDeltaEval(perf.NewEvaluator(c), l, perf.WeakLink{}, perf.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	before := de.Cost()
	for _, pair := range [][2]int{{-1, 0}, {0, qubits}, {3, 3}} {
		if _, err := de.Swap(pair[0], pair[1]); err == nil {
			t.Fatalf("Swap(%d, %d) accepted", pair[0], pair[1])
		}
	}
	if after := de.Cost(); after != before {
		t.Fatalf("rejected swaps changed the cost: %v != %v", after, before)
	}
}

// TestDeltaWeightsWeakLinkMatchesClassLatencies: the weak-link delta
// weights must reproduce the paper's per-class latencies with no hop
// surcharge, so the delta objective is the paper's model exactly.
func TestDeltaWeightsWeakLinkMatchesClassLatencies(t *testing.T) {
	lat := perf.Latencies{OneQubit: 2, TwoQubit: 150, WeakPenalty: 3}
	base, perHop, err := perf.WeakLink{}.DeltaWeights(lat)
	if err != nil {
		t.Fatal(err)
	}
	if perHop != 0 {
		t.Fatalf("weak-link perHop = %v, want 0", perHop)
	}
	if base[perf.ClassOneQ] != lat.OneQubit || base[perf.ClassTwoQIntra] != lat.TwoQubit ||
		base[perf.ClassTwoQWeak] != lat.WeakPenalty*lat.TwoQubit {
		t.Fatalf("weak-link delta weights %v", base)
	}
}

// TestDeltaWeightsShuttleIsContentionFreeTransport: the shuttle surrogate
// prices a weak gate as split+merge+recool+γ plus move per hop, α-free.
func TestDeltaWeightsShuttleIsContentionFreeTransport(t *testing.T) {
	p := shuttle.Default()
	lat := perf.DefaultLatencies()
	base, perHop, err := shuttle.Backend{Params: p}.DeltaWeights(lat)
	if err != nil {
		t.Fatal(err)
	}
	if perHop != p.MovePerHopMicros {
		t.Fatalf("shuttle perHop = %v, want %v", perHop, p.MovePerHopMicros)
	}
	want := lat.TwoQubit + p.SplitMicros + p.MergeMicros + p.RecoolMicros
	if base[perf.ClassTwoQWeak] != want {
		t.Fatalf("shuttle weak base = %v, want %v", base[perf.ClassTwoQWeak], want)
	}
}
