package perf

import (
	"math"
	"math/rand"
	"testing"

	"velociti/internal/circuit"
	"velociti/internal/ti"
)

func TestConstrainedUnlimitedEqualsParallel(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	lat := DefaultLatencies()
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(16)
		d, _ := ti.NewDevice(4, (n+3)/4, ti.Ring)
		chains := make([][]int, d.NumChains())
		for q := 0; q < n; q++ {
			chains[q/4] = append(chains[q/4], q)
		}
		l, _ := ti.NewLayout(d, chains)
		c := circuit.New("rand", n)
		for k := 0; k < r.Intn(40); k++ {
			a, b := r.Intn(n), r.Intn(n)
			for b == a {
				b = r.Intn(n)
			}
			c.CX(a, b)
		}
		for _, capacity := range []int{0, -1, 1000} {
			got, err := ParallelTimeConstrained(c, l, lat, capacity)
			if err != nil {
				t.Fatal(err)
			}
			if want := ParallelTime(c, l, lat); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d cap=%d: %v != unconstrained %v", trial, capacity, got, want)
			}
		}
	}
}

func TestConstrainedSingleSlotSerializesChain(t *testing.T) {
	// Four independent intra-chain gates on one chain: unconstrained they
	// all run at once (100 µs); with capacity 1 they serialize (400 µs).
	d, _ := ti.NewDevice(8, 1, ti.Ring)
	l, _ := ti.NewLayout(d, [][]int{{0, 1, 2, 3, 4, 5, 6, 7}})
	c := circuit.New("par4", 8)
	c.CX(0, 1)
	c.CX(2, 3)
	c.CX(4, 5)
	c.CX(6, 7)
	lat := DefaultLatencies()
	free, err := ParallelTimeConstrained(c, l, lat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if free != 100 {
		t.Fatalf("unconstrained = %v, want 100", free)
	}
	one, err := ParallelTimeConstrained(c, l, lat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one != 400 {
		t.Fatalf("capacity 1 = %v, want 400", one)
	}
	two, err := ParallelTimeConstrained(c, l, lat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if two != 200 {
		t.Fatalf("capacity 2 = %v, want 200", two)
	}
}

func TestConstrainedWeakGateOccupiesBothChains(t *testing.T) {
	// Chains A{0,1,2,3} and B{4,5,6,7}, capacity 1. A weak gate (1,4)
	// blocks both chains, so the intra-chain gates (2,3) and (5,6) must
	// wait behind it.
	d, _ := ti.NewDevice(4, 2, ti.Line)
	l, _ := ti.NewLayout(d, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}})
	c := circuit.New("wk", 8)
	c.CX(1, 4) // weak: αγ = 200, holds both chains
	c.CX(2, 3) // chain A
	c.CX(5, 6) // chain B
	lat := DefaultLatencies()
	got, err := ParallelTimeConstrained(c, l, lat, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Weak gate 0–200, then both locals 200–300 in parallel (one per chain).
	if got != 300 {
		t.Fatalf("capacity 1 with weak gate = %v, want 300", got)
	}
	// Unconstrained: everything at t=0, makespan 200.
	free, _ := ParallelTimeConstrained(c, l, lat, 0)
	if free != 200 {
		t.Fatalf("unconstrained = %v, want 200", free)
	}
}

func TestConstrainedRespectsDependencies(t *testing.T) {
	// A dependency chain must serialize regardless of capacity.
	d, _ := ti.NewDevice(4, 1, ti.Ring)
	l, _ := ti.NewLayout(d, [][]int{{0, 1, 2, 3}})
	c := circuit.New("dep", 4)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(2, 3)
	lat := DefaultLatencies()
	for _, capacity := range []int{1, 2, 4, 0} {
		got, err := ParallelTimeConstrained(c, l, lat, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if got != 300 {
			t.Fatalf("cap=%d: dependency chain = %v, want 300", capacity, got)
		}
	}
}

func TestConstrainedCapacityMonotoneOnStructuredCases(t *testing.T) {
	// On a wide layer of independent gates, more capacity never hurts.
	d, _ := ti.NewDevice(32, 2, ti.Ring)
	l, _ := ti.NewLayout(d, [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		{16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31},
	})
	c := circuit.New("layers", 32)
	for layer := 0; layer < 3; layer++ {
		for i := 0; i < 16; i += 2 {
			c.CX(i, i+1)
			c.CX(16+i, 16+i+1)
		}
	}
	lat := DefaultLatencies()
	prev := math.Inf(1)
	for _, capacity := range []int{1, 2, 4, 8, 0} {
		got, err := ParallelTimeConstrained(c, l, lat, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-9 {
			t.Fatalf("capacity %d slower than smaller capacity: %v > %v", capacity, got, prev)
		}
		prev = got
	}
}

func TestConstrainedValidation(t *testing.T) {
	d, _ := ti.NewDevice(4, 1, ti.Ring)
	l, _ := ti.NewLayout(d, [][]int{{0, 1}})
	c := circuit.New("v", 2)
	if _, err := ParallelTimeConstrained(c, l, Latencies{}, 1); err == nil {
		t.Fatalf("bad latencies should fail")
	}
	wide := circuit.New("w", 50)
	if _, err := ParallelTimeConstrained(wide, l, DefaultLatencies(), 1); err == nil {
		t.Fatalf("width mismatch should fail")
	}
	// Empty circuit.
	if got, err := ParallelTimeConstrained(c, l, DefaultLatencies(), 1); err != nil || got != 0 {
		t.Fatalf("empty = %v, %v", got, err)
	}
}

func TestConstrainedOneQubitGatesShareSlots(t *testing.T) {
	// Eight 1-qubit gates on one chain with capacity 2: four waves of 1 µs.
	d, _ := ti.NewDevice(8, 1, ti.Ring)
	l, _ := ti.NewLayout(d, [][]int{{0, 1, 2, 3, 4, 5, 6, 7}})
	c := circuit.New("ones", 8)
	for q := 0; q < 8; q++ {
		c.X(q)
	}
	got, err := ParallelTimeConstrained(c, l, DefaultLatencies(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("8 one-qubit gates at capacity 2 = %v µs, want 4", got)
	}
}
