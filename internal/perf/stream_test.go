package perf

// Internal tests: the chunk-boundary adversarial cases override
// streamChunkGates, and the shuttle streaming kernel is driven through
// TransportCosts directly (importing internal/shuttle here would cycle).
// The cross-package equivalence suite — every workload generator, both
// named backends, the core wiring — lives in the core and e2e test
// packages.

import (
	"math/rand"
	"reflect"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/workload"
)

// placeShuffled builds a layout directly through ti.NewLayout (this
// internal test cannot import internal/placement: its annealer imports
// perf): a seeded permutation dealt round-robin across the device's
// chains, so cross-chain gates land on varied weak links.
func placeShuffled(t *testing.T, d *ti.Device, n int, r *rand.Rand) *ti.Layout {
	t.Helper()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if r != nil {
		r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	chains := make([][]int, d.NumChains())
	for i, q := range perm {
		c := i % len(chains)
		chains[c] = append(chains[c], q)
	}
	l, err := ti.NewLayout(d, chains)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	return l
}

// streamPrograms returns every streaming-capable workload generator the
// equivalence property is pinned on: the six Table II applications, GHZ,
// the gate-level random workload, and the adversarial tiny programs
// (zero-gate, single-gate, single-qubit-register).
func streamPrograms(t *testing.T) []circuit.Program {
	t.Helper()
	var out []circuit.Program
	for _, a := range apps.Catalog() {
		p, err := a.Program()
		if err != nil {
			t.Fatalf("%s: Program: %v", a.Name(), err)
		}
		out = append(out, p)
	}
	ghz, err := apps.GHZProgram(9)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := workload.RandomCircuitProgram(17, 400, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, ghz, rnd,
		circuit.Program{Name: "empty", Qubits: 3, Body: func(circuit.Builder) {}},
		circuit.Program{Name: "one1q", Qubits: 2, Body: func(b circuit.Builder) { b.H(1) }},
		circuit.Program{Name: "one2q", Qubits: 2, Body: func(b circuit.Builder) { b.CX(0, 1) }},
		circuit.Program{Name: "narrow", Qubits: 1, Body: func(b circuit.Builder) { b.H(0); b.T(0); b.X(0) }},
	)
	return out
}

func streamLats(alphas ...float64) []Latencies {
	lats := make([]Latencies, len(alphas))
	for i, a := range alphas {
		lats[i] = DefaultLatencies()
		lats[i].WeakPenalty = a
	}
	return lats
}

// stripPaths clears the critical paths of materialized results: the one
// documented divergence of the streaming path (perf/stream.go).
func stripPaths(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	for i := range out {
		out[i].CriticalPath = nil
	}
	return out
}

// checkStream pins both streaming kernels against their materialized
// twins for one program and layout.
func checkStream(t *testing.T, tag string, p circuit.Program, l *ti.Layout, lats []Latencies) {
	t.Helper()
	c, err := p.Circuit()
	if err != nil {
		t.Fatalf("%s: Circuit: %v", tag, err)
	}
	e := NewEvaluator(c)
	b, err := e.Bind(l)
	if err != nil {
		t.Fatalf("%s: Bind: %v", tag, err)
	}

	want, err := b.TimeAll(lats)
	if err != nil {
		t.Fatalf("%s: TimeAll: %v", tag, err)
	}
	got, st, err := StreamTimeAll(p.Source(), l, lats)
	if err != nil {
		t.Fatalf("%s: StreamTimeAll: %v", tag, err)
	}
	if !reflect.DeepEqual(got, stripPaths(want)) {
		t.Fatalf("%s: streaming weak-link results diverge\n got %+v\nwant %+v", tag, got, stripPaths(want))
	}
	checkStreamStats(t, tag, st, c)

	costs := TransportCosts{SplitMicros: 80, MovePerHopMicros: 12.5, MergeMicros: 80, RecoolMicros: 360}
	if err := b.AttachTransport(l); err != nil {
		t.Fatalf("%s: AttachTransport: %v", tag, err)
	}
	wantT, err := b.TimeTransportAll(costs, lats)
	if err != nil {
		t.Fatalf("%s: TimeTransportAll: %v", tag, err)
	}
	gotT, stT, err := StreamTransportAll(p.Source(), l, costs, lats)
	if err != nil {
		t.Fatalf("%s: StreamTransportAll: %v", tag, err)
	}
	if !reflect.DeepEqual(gotT, stripPaths(wantT)) {
		t.Fatalf("%s: streaming shuttle results diverge\n got %+v\nwant %+v", tag, gotT, stripPaths(wantT))
	}
	checkStreamStats(t, tag, stT, c)

	// The materialized adapter must stream identically to the generator.
	gotC, stC, err := StreamTimeAll(c.Source(), l, lats)
	if err != nil {
		t.Fatalf("%s: StreamTimeAll(circuit): %v", tag, err)
	}
	if !reflect.DeepEqual(gotC, got) || stC != st {
		t.Fatalf("%s: circuit-adapter stream diverges from generator stream", tag)
	}
}

func checkStreamStats(t *testing.T, tag string, st StreamStats, c *circuit.Circuit) {
	t.Helper()
	if st.Fingerprint != c.Fingerprint() {
		t.Fatalf("%s: rolling fingerprint %016x != materialized %016x", tag, st.Fingerprint, c.Fingerprint())
	}
	if st.Gates != c.NumGates() || st.OneQubitGates != c.NumOneQubitGates() || st.TwoQubitGates != c.NumTwoQubitGates() {
		t.Fatalf("%s: stream counts (%d, %d, %d) != circuit (%d, %d, %d)",
			tag, st.Gates, st.OneQubitGates, st.TwoQubitGates,
			c.NumGates(), c.NumOneQubitGates(), c.NumTwoQubitGates())
	}
}

// TestStreamMatchesMaterialized is the tentpole property: for every
// workload generator, both timing kernels, and lane counts 1 and 4, the
// streaming path equals the materialized path bit for bit (critical path
// excepted) and the rolling fingerprint equals Circuit.Fingerprint.
func TestStreamMatchesMaterialized(t *testing.T) {
	for _, p := range streamPrograms(t) {
		r := stats.NewRand(42)
		chains := 6
		if p.Qubits < 6 {
			chains = p.Qubits
		}
		d, err := ti.DeviceFor(p.Qubits, (p.Qubits+chains-1)/chains, ti.Ring)
		if err != nil {
			t.Fatalf("%s: DeviceFor: %v", p.Name, err)
		}
		l := placeShuffled(t, d, p.Qubits, r)
		checkStream(t, p.Name+"/lanes=1", p, l, streamLats(2.0))
		checkStream(t, p.Name+"/lanes=4", p, l, streamLats(2.0, 1.5, 1.2, 1.0))
	}
}

// TestStreamChunkBoundaries is the adversarial window test: with the
// chunk shrunk to a handful of gates, dependencies straddle every window
// edge and the frontier hand-off is exercised constantly; results must
// not move. Window size 1 degenerates to gate-at-a-time evaluation.
func TestStreamChunkBoundaries(t *testing.T) {
	defer func(old int) { streamChunkGates = old }(streamChunkGates)
	rnd, err := workload.RandomCircuitProgram(11, 257, 0.35, 3)
	if err != nil {
		t.Fatal(err)
	}
	qft, err := apps.QFTProgram(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []circuit.Program{
		rnd, qft,
		{Name: "empty", Qubits: 2, Body: func(circuit.Builder) {}},
		{Name: "single", Qubits: 2, Body: func(b circuit.Builder) { b.CX(1, 0) }},
	} {
		r := stats.NewRand(5)
		d, err := ti.DeviceFor(p.Qubits, 3, ti.Line)
		if err != nil {
			t.Fatalf("%s: DeviceFor: %v", p.Name, err)
		}
		l := placeShuffled(t, d, p.Qubits, r)
		for _, window := range []int{1, 2, 3, 7, 64, 4096} {
			streamChunkGates = window
			checkStream(t, p.Name, p, l, streamLats(1.9, 1.0))
		}
	}
}

// TestStreamRejectsOversizedRegister pins the qubit-count check against
// Bind's diagnostic.
func TestStreamRejectsOversizedRegister(t *testing.T) {
	d, err := ti.DeviceFor(4, 4, ti.Ring)
	if err != nil {
		t.Fatal(err)
	}
	l := placeShuffled(t, d, 4, nil)
	p := circuit.Program{Name: "wide", Qubits: 9, Body: func(b circuit.Builder) { b.H(8) }}
	if _, _, err := StreamTimeAll(p.Source(), l, streamLats(1.5)); err == nil {
		t.Fatal("oversized register accepted")
	}
}
