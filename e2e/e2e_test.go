//go:build e2e

// Package e2e drives the compiled binaries end to end: it builds
// velociti, velociti-sweep, and velociti-serve with the local toolchain,
// boots the service on a free port as a real child process, and checks
// the service-level contracts no unit test can — CLI byte-equivalence
// across process boundaries, saturation backpressure on a live listener,
// and graceful SIGTERM shutdown with in-flight work draining.
//
// The build tag keeps this out of plain `go test ./...`; CI runs it as
// the service-e2e job with `go test -tags e2e ./e2e/`.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var bins = struct {
	serve, velociti, sweep string
}{}

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "velociti-e2e-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e: mktemp:", err)
		os.Exit(1)
	}
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "velociti/cmd/"+name)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "e2e: building %s: %v\n", name, err)
			os.RemoveAll(dir)
			os.Exit(1)
		}
		return out
	}
	bins.serve = build("velociti-serve")
	bins.velociti = build("velociti")
	bins.sweep = build("velociti-sweep")
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// syncBuffer collects a child's stderr while the test reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// server is one velociti-serve child process.
type server struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *syncBuffer
	done   chan error
}

var listenLine = regexp.MustCompile(`velociti-serve: listening on (\S+)`)

// startServer boots velociti-serve on a free port and waits for the
// listen banner. The process is killed at test cleanup if still alive.
func startServer(t *testing.T, extraArgs ...string) *server {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	s := &server{
		cmd:    exec.Command(bins.serve, args...),
		stderr: &syncBuffer{},
		done:   make(chan error, 1),
	}
	s.cmd.Stderr = s.stderr
	s.cmd.Stdout = io.Discard
	if err := s.cmd.Start(); err != nil {
		t.Fatalf("start velociti-serve: %v", err)
	}
	// done is closed after the exit status is delivered, so every receive
	// past the first returns immediately (the cleanup below must not hang
	// when a test already consumed the status).
	go func() { s.done <- s.cmd.Wait(); close(s.done) }()
	t.Cleanup(func() {
		s.cmd.Process.Kill()
		<-s.done
	})

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenLine.FindStringSubmatch(s.stderr.String()); m != nil {
			s.base = "http://" + m[1]
			return s
		}
		select {
		case err := <-s.done:
			t.Fatalf("velociti-serve exited before listening: %v\n%s", err, s.stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("no listen banner from velociti-serve:\n%s", s.stderr.String())
	return nil
}

// post sends a JSON request and returns the status, headers, and body.
func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// cliStdout runs a compiled CLI and returns its stdout, failing the test
// on a nonzero exit.
func cliStdout(t *testing.T, bin string, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, stderr.String())
	}
	return stdout.Bytes()
}

// TestEvaluateMatchesVelocitiCLI pins the service guarantee across real
// process boundaries: POST /v1/evaluate answers with the exact bytes
// `velociti -json` prints for the same parameters.
func TestEvaluateMatchesVelocitiCLI(t *testing.T) {
	s := startServer(t)
	resp, got := post(t, s.base+"/v1/evaluate",
		`{"workload": {"name": "cli", "qubits": 24, "one_qubit_gates": 10, "two_qubit_gates": 16}, "seed": 7, "runs": 5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d\n%s", resp.StatusCode, got)
	}
	want := cliStdout(t, bins.velociti,
		"-qubits", "24", "-one-qubit-gates", "10", "-two-qubit-gates", "16",
		"-seed", "7", "-runs", "5", "-json")
	if !bytes.Equal(got, want) {
		t.Errorf("service body differs from velociti -json stdout:\n got: %s\nwant: %s", got, want)
	}
}

// TestSweepMatchesVelocitiSweepCLI does the same for /v1/sweep against
// velociti-sweep's CSV stdout.
func TestSweepMatchesVelocitiSweepCLI(t *testing.T) {
	s := startServer(t)
	resp, got := post(t, s.base+"/v1/sweep",
		`{"qv": true, "qubit_range": "8:48:20", "chain_lengths": [8, 16], "alphas": [2.0, 1.0],
		  "placers": ["random", "load-balanced"], "runs": 4, "seed": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d\n%s", resp.StatusCode, got)
	}
	want := cliStdout(t, bins.sweep,
		"-qv", "-qubit-range", "8:48:20", "-chain-lengths", "8,16", "-alphas", "2.0,1.0",
		"-placers", "random,load-balanced", "-runs", "4", "-seed", "3")
	if !bytes.Equal(got, want) {
		t.Errorf("service body differs from velociti-sweep stdout:\n got: %s\nwant: %s", got, want)
	}
}

// TestExploreReturnsGridAndPareto drives /v1/explore and checks the
// response shape: a full grid with a non-empty Pareto subset.
func TestExploreReturnsGridAndPareto(t *testing.T) {
	s := startServer(t)
	resp, got := post(t, s.base+"/v1/explore",
		`{"spec": {"name": "e2e", "qubits": 16, "two_qubit_gates": 10}, "chain_lengths": [8, 16],
		  "alphas": [2.0, 1.0], "runs": 3, "seed": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore = %d\n%s", resp.StatusCode, got)
	}
	var out struct {
		Points []json.RawMessage `json:"points"`
		Pareto []json.RawMessage `json:"pareto"`
	}
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatalf("explore body does not parse: %v\n%s", err, got)
	}
	// 2 chain lengths x 2 alphas x 2 default placers.
	if len(out.Points) != 8 {
		t.Errorf("points = %d, want 8", len(out.Points))
	}
	if len(out.Pareto) == 0 || len(out.Pareto) > len(out.Points) {
		t.Errorf("pareto = %d points, want 1..%d", len(out.Pareto), len(out.Points))
	}
}

// metricsSnapshot fetches and decodes /metrics.
func metricsSnapshot(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return snap
}

// TestSaturationReturns429 boots a one-slot, no-queue server, occupies
// the slot with a deliberately slow sweep, and checks a second request is
// rejected with 429 + Retry-After while the first still completes.
func TestSaturationReturns429(t *testing.T) {
	s := startServer(t, "-max-inflight", "1", "-max-queue", "-1", "-retry-after", "2s",
		"-request-timeout", "180s")

	// Several seconds of single-threaded work (about 15k trials), well
	// under the raised request timeout.
	heavyDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(s.base+"/v1/sweep", "application/json", strings.NewReader(
			`{"qv": true, "qubit_range": "64:512:32", "runs": 1000, "workers": 1}`))
		if err != nil {
			heavyDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		heavyDone <- resp.StatusCode
	}()

	// Wait until the heavy sweep holds the only slot.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("heavy sweep never showed up in /metrics in_flight")
		}
		if inFlight, ok := metricsSnapshot(t, s.base)["in_flight"].(float64); ok && inFlight >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, body := post(t, s.base+"/v1/evaluate",
		`{"workload": {"name": "probe", "qubits": 8, "two_qubit_gates": 4}, "runs": 2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("probe = %d, want 429\n%s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want %q", ra, "2")
	}
	var envelope struct {
		Error struct {
			Kind string `json:"kind"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Kind != "overloaded" {
		t.Errorf("429 body = %s, want typed overloaded envelope (err=%v)", body, err)
	}

	select {
	case status := <-heavyDone:
		if status != http.StatusOK {
			t.Fatalf("heavy sweep = %d, want 200", status)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("heavy sweep never completed")
	}
}

// TestGracefulShutdown SIGTERMs the server while a request is in flight:
// the request must complete, the process must exit 0, and the drain
// must be visible in the logs.
func TestGracefulShutdown(t *testing.T) {
	s := startServer(t, "-shutdown-grace", "180s", "-request-timeout", "180s")

	inflightDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(s.base+"/v1/sweep", "application/json", strings.NewReader(
			`{"qv": true, "qubit_range": "64:512:32", "runs": 1000, "workers": 1}`))
		if err != nil {
			inflightDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()

	// Give the request time to be admitted, then ask the server to stop.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("in-flight sweep never showed up in /metrics")
		}
		if inFlight, ok := metricsSnapshot(t, s.base)["in_flight"].(float64); ok && inFlight >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	select {
	case status := <-inflightDone:
		if status != http.StatusOK {
			t.Fatalf("in-flight sweep = %d, want 200 (drained before exit)", status)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("in-flight sweep never completed after SIGTERM")
	}
	select {
	case err := <-s.done:
		if err != nil {
			t.Fatalf("velociti-serve exit = %v, want 0\n%s", err, s.stderr.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatal("velociti-serve did not exit after SIGTERM")
	}
	logs := s.stderr.String()
	if !strings.Contains(logs, "shutting down") || !strings.Contains(logs, "velociti-serve: stopped") {
		t.Errorf("logs missing shutdown trace:\n%s", logs)
	}

	// New connections must be refused once the listener is down.
	if _, err := http.Get(s.base + "/healthz"); err == nil {
		t.Errorf("healthz still reachable after shutdown")
	}
}
