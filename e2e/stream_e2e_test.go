//go:build e2e

// Million-gate streaming smoke: the memory contract that motivates the
// streaming path, enforced at full scale. A 1M-gate QFT is generated,
// placed, and priced through core's streaming evaluator under a hard
// 256 MiB Go heap limit — a budget the materialized pipeline (gate
// slice, CSR evaluator, critical-path reconstruction) cannot fit at this
// size, so the test fails loudly if anything on the path starts
// materializing again. Unit-scale bit-identity between the streaming and
// materialized paths is pinned by the property tests in internal/core
// and internal/perf; this test pins the scale.
package e2e

import (
	"runtime"
	"runtime/debug"
	"testing"

	"velociti/internal/apps"
	"velociti/internal/core"
	"velociti/internal/shuttle"
)

// streamHeapLimit is the soft heap ceiling for the million-gate run. The
// streaming path's working set is a few hundred KiB per trial (the
// frontier window scales with qubits, not gates), so 256 MiB leaves two
// orders of magnitude of headroom while staying far below what a
// materialized 1M-gate pipeline needs.
const streamHeapLimit = 256 << 20

func TestMillionGateStreamingUnderHeapLimit(t *testing.T) {
	// 633 qubits puts the QFT generator just past 10^6 gates.
	prog, err := apps.QFTProgram(633)
	if err != nil {
		t.Fatal(err)
	}
	prev := debug.SetMemoryLimit(streamHeapLimit)
	defer debug.SetMemoryLimit(prev)

	for name, backend := range map[string]core.Config{
		"weaklink": {},
		"shuttle":  {Backend: shuttle.Backend{Params: shuttle.Default()}},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := backend
			cfg.Program = &prog
			cfg.Stream = true
			cfg.ChainLength = 16
			cfg.Runs = 2
			cfg.Seed = 1
			cfg.Workers = 2
			report, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(report.Trials); got != cfg.Runs {
				t.Fatalf("trials = %d, want %d", got, cfg.Runs)
			}
			gates := report.Spec.OneQubitGates + report.Spec.TwoQubitGates
			if gates < 1_000_000 {
				t.Fatalf("streamed only %d gates, want >= 1e6", gates)
			}
			if report.Parallel.Mean <= 0 || report.Serial.Mean <= 0 {
				t.Fatalf("degenerate report: serial %v parallel %v", report.Serial.Mean, report.Parallel.Mean)
			}
			for _, trial := range report.Trials {
				if len(trial.Perf.CriticalPath) != 0 {
					t.Fatal("streaming trial carries a critical path — something materialized")
				}
			}
		})
	}

	// The ceiling is a soft limit (the runtime GCs harder rather than
	// aborting), so the assertion is on the runtime's own high-water
	// mark: total memory obtained from the OS must stay well under what
	// a materialized million-gate pipeline occupies.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.Sys > 2*streamHeapLimit {
		t.Fatalf("runtime high-water %d MiB exceeds twice the %d MiB streaming budget",
			ms.Sys>>20, int64(streamHeapLimit)>>20)
	}
}
