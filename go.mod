module velociti

go 1.22
