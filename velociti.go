// Package velociti is an architecture-level performance modeling framework
// for QCCD-based trapped-ion (TI) quantum computers, reproducing the system
// described in "VelociTI: An Architecture-level Performance Modeling
// Framework for Trapped Ion Quantum Computers" (IISWC 2023).
//
// A trapped-ion machine is a set of ion chains joined by weak links — slow
// optical connections that are the central scalability bottleneck the
// framework elevates to an architectural knob. Given a workload's boundary
// conditions (qubit count and 1-/2-qubit gate counts, or an explicit
// gate-level circuit), VelociTI performs randomized place-and-route onto an
// area-optimal set of chains and evaluates two timing models: the serial
// baseline of the paper's Eq. 1–2 and a parallel model that computes the
// longest weighted path through the gate dependency graph.
//
// # Quick start
//
//	cfg := velociti.Config{
//		Spec:        velociti.Spec{Name: "demo", Qubits: 64, TwoQubitGates: 560},
//		ChainLength: 16,
//	}
//	report, err := velociti.Run(cfg)
//	// report.Serial, report.Parallel, report.MeanSpeedup()
//
// The package is a facade over the internal implementation:
//
//   - internal/circuit — circuit IR, SSA gate labels, dependency extraction
//   - internal/ti — chains, weak-link ring/line topologies, layouts
//   - internal/placement, internal/schedule — place-and-route policies
//   - internal/perf — the serial and parallel performance models
//   - internal/dag — the directed-graph substrate (longest path)
//   - internal/apps — Table II application generators (QFT, QAOA, ...)
//   - internal/workload — random, quantum-volume, and ratio workloads
//   - internal/qasm — OpenQASM 2.0 import/export
//   - internal/statevec — functional validation on small systems
//   - internal/expt — drivers regenerating every paper table and figure
//   - internal/config — JSON persistence of parameters and circuits
//
// The cmd/ directory provides the velociti, velociti-sweep, and
// velociti-repro command-line tools; examples/ holds runnable programs
// exercising this API.
package velociti

import (
	"io"
	"math/rand"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/config"
	"velociti/internal/core"
	"velociti/internal/dse"
	"velociti/internal/fidelity"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/qasm"
	"velociti/internal/route"
	"velociti/internal/schedule"
	"velociti/internal/shuttle"
	"velociti/internal/statevec"
	"velociti/internal/stats"
	"velociti/internal/ti"
	"velociti/internal/verr"
)

// Spec is a workload's boundary conditions: register width and the 1- and
// 2-qubit gate counts (the paper's Table I circuit description).
type Spec = circuit.Spec

// Circuit is an explicit gate-level circuit.
type Circuit = circuit.Circuit

// Gate is one operation in a Circuit.
type Gate = circuit.Gate

// Kind identifies a gate's logical operation.
type Kind = circuit.Kind

// NewCircuit returns an empty circuit over numQubits qubits. A non-positive
// width poisons the circuit (see Circuit.Err) rather than panicking.
func NewCircuit(name string, numQubits int) *Circuit {
	return circuit.New(name, numQubits)
}

// ErrInput is the sentinel matched (via errors.Is or IsInputError) by every
// validation failure provoked by user input — bad API arguments, malformed
// QASM or JSON, unknown policy names. Errors that do not match it indicate
// a bug in the framework itself. See internal/verr for the repo-wide
// contract.
var ErrInput = verr.ErrInput

// IsInputError reports whether err stems from invalid user input rather
// than an internal failure.
func IsInputError(err error) bool { return verr.IsInput(err) }

// Latencies is the timing configuration: δ (1-qubit), γ (2-qubit), and the
// weak-link penalty α (Table III).
type Latencies = perf.Latencies

// DefaultLatencies returns the paper's evaluation latencies: δ = 1 µs,
// γ = 100 µs, α = 2.
func DefaultLatencies() Latencies { return perf.DefaultLatencies() }

// Result is the outcome of evaluating both performance models on one
// placed circuit.
type Result = perf.Result

// Config describes one simulation: workload, machine, timing model,
// policies, and replication.
type Config = core.Config

// Report aggregates a multi-trial simulation.
type Report = core.Report

// DefaultRuns is the paper's replication count per data point (35).
const DefaultRuns = core.DefaultRuns

// Run executes a configured simulation: randomized place-and-route per
// trial, both performance models, and summary statistics across trials.
func Run(cfg Config) (*Report, error) { return core.Run(cfg) }

// RunOnce executes a single trial with an explicit seed, returning the
// placed circuit and chain layout alongside the evaluation for detailed
// inspection.
func RunOnce(cfg Config, seed int64) (*Circuit, *Layout, Result, error) {
	return core.RunOnce(cfg, seed)
}

// RunSweep executes the configured simulation under every timing model in
// lats with shared placement, synthesis, and gate classification;
// RunSweep(cfg, lats)[j] is bit-identical to Run with cfg.Latencies =
// lats[j]. This is the engine behind the α sweeps of Figures 8(b)/9(b).
func RunSweep(cfg Config, lats []Latencies) ([]*Report, error) {
	return core.RunSweep(cfg, lats)
}

// Pipeline is a shared, content-keyed store of latency-independent trial
// artifacts (layouts, synthesized circuits, gate-class bindings). Attach one
// to Config.Pipeline to reuse artifacts across related simulations — caching
// never changes results.
type Pipeline = core.Pipeline

// NewPipeline returns an empty artifact store with the default per-stage
// capacity.
func NewPipeline() *Pipeline { return core.NewPipeline() }

// Device describes a fixed trapped-ion machine: chains of a given length
// joined by weak links.
type Device = ti.Device

// Layout is a concrete assignment of qubits onto a device's chains.
type Layout = ti.Layout

// Topology selects the weak-link arrangement.
type Topology = ti.Topology

// Weak-link topologies: Ring (the paper's, w_max = #chains) and Line
// (w_max = #chains − 1).
const (
	Ring = ti.Ring
	Line = ti.Line
)

// NewDevice constructs a machine with the given chain length, chain count,
// and topology.
func NewDevice(chainLength, numChains int, topo Topology) (*Device, error) {
	return ti.NewDevice(chainLength, numChains, topo)
}

// DeviceFor constructs the area-optimal machine for a workload:
// ⌈numQubits/chainLength⌉ chains.
func DeviceFor(numQubits, chainLength int, topo Topology) (*Device, error) {
	return ti.DeviceFor(numQubits, chainLength, topo)
}

// PlacementPolicy assigns qubits to chains.
type PlacementPolicy = placement.Policy

// Placement policies: the paper's random policy plus deterministic and
// interaction-aware extensions.
var (
	RandomPlacement     PlacementPolicy = placement.Random{}
	RoundRobinPlacement PlacementPolicy = placement.RoundRobin{}
	SequentialPlacement PlacementPolicy = placement.Sequential{}
)

// InteractionAwarePlacement clusters frequently interacting qubits onto the
// same chain, minimizing weak-link traffic for explicit circuits.
func InteractionAwarePlacement(interactions map[[2]int]int) PlacementPolicy {
	return placement.InteractionAware{Interactions: interactions}
}

// RefinedPlacement runs a base policy (nil = random) and then applies
// Kernighan–Lin-style local search to minimize the weighted cross-chain
// gate count.
func RefinedPlacement(base PlacementPolicy, interactions map[[2]int]int, passes int) PlacementPolicy {
	return placement.Refined{Base: base, Interactions: interactions, Passes: passes}
}

// RefineLayout locally optimizes an existing layout for the given
// interaction graph, returning the refined layout, its cross-chain gate
// weight, and whether the search converged (false means the pass budget
// ran out while swaps were still improving — retry with more passes for
// a local optimum).
func RefineLayout(l *Layout, interactions map[[2]int]int, passes int) (*Layout, int, bool, error) {
	return placement.Refine(l, interactions, passes)
}

// Placer synthesizes a gate sequence realizing a Spec on a Layout.
type Placer = schedule.Placer

// Gate placers: the paper's random scheduling plus the extension policies.
func RandomPlacer() Placer          { return schedule.Random{} }
func WeakAvoidingPlacer() Placer    { return schedule.WeakAvoiding{} }
func EdgeConstrainedPlacer() Placer { return schedule.EdgeConstrained{} }

// LoadBalancedPlacer greedily minimizes per-gate finish times under the
// given latency model.
func LoadBalancedPlacer(lat Latencies) Placer {
	return schedule.LoadBalanced{Latencies: lat}
}

// PlacerByName resolves "random", "weak-avoiding", "load-balanced", or
// "edge-constrained".
func PlacerByName(name string, lat Latencies) (Placer, error) {
	return schedule.ByName(name, lat)
}

// Evaluate runs both performance models on an explicitly placed circuit.
func Evaluate(c *Circuit, l *Layout, lat Latencies) (Result, error) {
	return perf.Evaluate(c, l, lat)
}

// ParallelTimeConstrained evaluates the parallel model under a per-chain
// concurrency budget (at most capacity gates per chain at once; ≤ 0 means
// unlimited) — modeling finite AOM control channels.
func ParallelTimeConstrained(c *Circuit, l *Layout, lat Latencies, capacity int) (float64, error) {
	return perf.ParallelTimeConstrained(c, l, lat, capacity)
}

// Apps returns the paper's Table II application workloads as abstract
// specs.
func Apps() []Spec { return apps.PaperSpecs() }

// AppByName returns the Table II workload with the given name along with a
// gate-level generator for it.
func AppByName(name string) (Spec, func() (*Circuit, error), error) {
	a, err := apps.ByName(name)
	if err != nil {
		return Spec{}, nil, err
	}
	return a.Spec, a.Build, nil
}

// Application circuit generators (gate-level extensions of Table II). Each
// validates its arguments and returns an input-kind error on nonsense.
func QFT(n int) (*Circuit, error) { return apps.QFT(n) }
func GHZ(n int) (*Circuit, error) { return apps.GHZ(n) }
func BernsteinVazirani(n int, secret []bool) (*Circuit, error) {
	return apps.BernsteinVazirani(n, secret)
}
func CuccaroAdder(bits int) (*Circuit, error) { return apps.CuccaroAdder(bits) }
func Grover(dataQubits, iterations int) (*Circuit, error) {
	return apps.Grover(dataQubits, iterations)
}
func Supremacy(rows, cols, cycles int, seed int64) (*Circuit, error) {
	return apps.Supremacy(rows, cols, cycles, seed)
}
func QAOA(n int, edges [][2]int, rounds int, seed int64) (*Circuit, error) {
	return apps.QAOA(n, edges, rounds, seed)
}
func QPE(countQubits int, phase float64) (*Circuit, error) { return apps.QPE(countQubits, phase) }
func VQEAnsatz(n, layers int, seed int64) (*Circuit, error) {
	return apps.VQEAnsatz(n, layers, seed)
}
func WState(n int) (*Circuit, error) { return apps.WState(n) }

// ParseQASM parses an OpenQASM 2.0 program into a Circuit.
func ParseQASM(name, src string) (*Circuit, error) { return qasm.ParseCircuit(name, src) }

// SerializeQASM renders a Circuit as an OpenQASM 2.0 program.
func SerializeQASM(c *Circuit) string { return qasm.Serialize(c) }

// Params is the JSON-serializable form of a simulation configuration.
type Params = config.Params

// DefaultParams returns the paper's evaluation configuration.
func DefaultParams() Params { return config.Default() }

// LoadParams reads a configuration from a JSON file.
func LoadParams(path string) (Params, error) { return config.LoadParams(path) }

// WriteCircuitJSON and ReadCircuitJSON persist circuits as JSON.
func WriteCircuitJSON(w io.Writer, c *Circuit) error { return config.WriteCircuit(w, c) }
func ReadCircuitJSON(r io.Reader) (*Circuit, error)  { return config.ReadCircuit(r) }

// FidelityModel holds per-gate-class error rates and the coherence time
// for success-probability estimation (extension; see internal/fidelity).
type FidelityModel = fidelity.Model

// FidelityEstimate is the success-probability breakdown of a placed
// circuit.
type FidelityEstimate = fidelity.Estimate

// DefaultFidelityModel returns literature-typical trapped-ion error rates.
func DefaultFidelityModel() FidelityModel { return fidelity.Default() }

// EstimateFidelity computes the success probability of a placed circuit
// under the given error model, using the parallel model's execution time
// for dephasing.
func EstimateFidelity(c *Circuit, l *Layout, lat Latencies, m FidelityModel) (FidelityEstimate, error) {
	return m.Estimate(c, l, lat)
}

// ShuttleParams prices ion-transport primitives (split, move, merge,
// recool) for the QCCD shuttling communication model (extension; see
// internal/shuttle).
type ShuttleParams = shuttle.Params

// ShuttleResult compares the weak-link and shuttling mechanisms on one
// placed circuit.
type ShuttleResult = shuttle.Result

// DefaultShuttleParams returns literature-order-of-magnitude transport
// costs.
func DefaultShuttleParams() ShuttleParams { return shuttle.Default() }

// CompareShuttle evaluates a placed circuit under both cross-chain
// communication mechanisms: photonic weak links (α·γ) versus physical ion
// shuttling.
func CompareShuttle(c *Circuit, l *Layout, lat Latencies, p ShuttleParams) (ShuttleResult, error) {
	return shuttle.Compare(c, l, lat, p)
}

// DesignPoint is one evaluated machine configuration in a design-space
// exploration: knobs (chain length, α, placer) plus mean parallel time and
// log-fidelity.
type DesignPoint = dse.Point

// DesignSpaceOptions configures the exploration grid.
type DesignSpaceOptions = dse.Options

// ExploreDesignSpace evaluates a workload across the configured grid of
// machine designs.
func ExploreDesignSpace(spec Spec, opt DesignSpaceOptions) ([]DesignPoint, error) {
	return dse.Explore(spec, opt)
}

// ParetoFrontier filters design points to the non-dominated time/fidelity
// frontier, fastest first.
func ParetoFrontier(points []DesignPoint) []DesignPoint { return dse.Pareto(points) }

// RoutedCircuit is the outcome of the localizing router: the rewritten
// circuit, the final logical-to-physical qubit permutation, and migration
// counts.
type RoutedCircuit = route.Result

// LocalizeCircuit routes an explicit circuit against a layout: cross-chain
// gate streaks past the migration break-even (3α/(α−1) interactions) are
// localized by swapping a qubit into the partner chain. Semantics are
// preserved up to the returned final permutation.
func LocalizeCircuit(c *Circuit, l *Layout, lat Latencies) (*RoutedCircuit, error) {
	return route.Localize(c, l, lat)
}

// Timeline is the ASAP gate schedule implied by the parallel model, with
// per-gate intervals, chain lanes, concurrency, and an ASCII Gantt view.
type Timeline = perf.Timeline

// BuildTimeline computes the schedule of a placed circuit.
func BuildTimeline(c *Circuit, l *Layout, lat Latencies) (*Timeline, error) {
	return perf.BuildTimeline(c, l, lat)
}

// StateVector is a pure quantum state produced by the built-in functional
// simulator.
type StateVector = statevec.State

// Simulate executes a circuit on the state-vector simulator (up to
// statevec.MaxQubits qubits). This is the "functional simulation for small
// systems" the paper lists as future work; the framework's tests use it to
// validate the application generators.
func Simulate(c *Circuit) (*StateVector, error) { return statevec.Run(c) }

// Summary holds aggregate statistics of a sample (mean, std, min, max,
// median).
type Summary = stats.Summary

// NewRand returns the deterministic PRNG used throughout the framework.
func NewRand(seed int64) *rand.Rand { return stats.NewRand(seed) }
