package velociti

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeQuickStart(t *testing.T) {
	cfg := Config{
		Spec:        Spec{Name: "demo", Qubits: 64, TwoQubitGates: 560},
		ChainLength: 16,
		Runs:        5,
		Seed:        1,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanSpeedup() <= 1 {
		t.Fatalf("speedup = %v", rep.MeanSpeedup())
	}
	if rep.Device.NumChains != 4 {
		t.Fatalf("device = %+v", rep.Device)
	}
}

func TestFacadeRunOnce(t *testing.T) {
	cfg := Config{
		Spec:        Spec{Name: "once", Qubits: 32, TwoQubitGates: 100},
		ChainLength: 8,
	}
	c, l, res, err := RunOnce(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTwoQubitGates() != 100 || l.NumQubits() != 32 || res.ParallelMicros <= 0 {
		t.Fatalf("RunOnce pieces: %v %v %v", c.Spec(), l.NumQubits(), res)
	}
}

func TestFacadeExplicitCircuit(t *testing.T) {
	c, err := QFT(16)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Circuit: c, ChainLength: 8, Runs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec.TwoQubitGates != 240 {
		t.Fatalf("spec = %+v", rep.Spec)
	}
}

func TestFacadeAppsCatalog(t *testing.T) {
	specs := Apps()
	if len(specs) != 6 {
		t.Fatalf("apps = %d", len(specs))
	}
	spec, build, err := AppByName("BV")
	if err != nil {
		t.Fatal(err)
	}
	if spec.TwoQubitGates != 64 {
		t.Fatalf("BV spec = %+v", spec)
	}
	c, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 64 {
		t.Fatalf("BV generator width = %d", c.NumQubits())
	}
}

func TestFacadeDeviceAndEvaluate(t *testing.T) {
	d, err := DeviceFor(16, 8, Ring)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := SequentialPlacement.Place(d, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(fc(t)(GHZ(16)), layout, DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if res.WeakGates == 0 {
		t.Fatalf("GHZ ladder across 2 chains should cross the boundary: %+v", res)
	}
}

func TestFacadeQASMRoundTrip(t *testing.T) {
	text := SerializeQASM(fc(t)(GHZ(4)))
	c, err := ParseQASM("ghz", text)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 4 {
		t.Fatalf("gates = %d", c.NumGates())
	}
	if !strings.Contains(text, "OPENQASM 2.0") {
		t.Fatalf("serialization malformed:\n%s", text)
	}
}

func TestFacadeCircuitJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCircuitJSON(&buf, fc(t)(CuccaroAdder(2))); err != nil {
		t.Fatal(err)
	}
	c, err := ReadCircuitJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 6 {
		t.Fatalf("adder width = %d", c.NumQubits())
	}
}

func TestFacadePlacers(t *testing.T) {
	for _, name := range []string{"random", "weak-avoiding", "load-balanced", "edge-constrained"} {
		p, err := PlacerByName(name, DefaultLatencies())
		if err != nil || p.Name() != name {
			t.Errorf("PlacerByName(%q): %v %v", name, p, err)
		}
	}
	if RandomPlacer().Name() != "random" || WeakAvoidingPlacer().Name() != "weak-avoiding" ||
		EdgeConstrainedPlacer().Name() != "edge-constrained" ||
		LoadBalancedPlacer(DefaultLatencies()).Name() != "load-balanced" {
		t.Fatalf("placer constructors drifted")
	}
}

func TestFacadeParams(t *testing.T) {
	p := DefaultParams()
	p.Workload = Spec{Name: "w", Qubits: 8, TwoQubitGates: 4}
	p.Runs = 2
	cfg, err := p.ToCoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if fc(t)(Supremacy(8, 8, 20, 1)).NumTwoQubitGates() != 560 {
		t.Fatalf("Supremacy count drifted")
	}
	if fc(t)(QAOA(6, [][2]int{{0, 1}, {2, 3}}, 2, 1)).NumTwoQubitGates() != 8 {
		t.Fatalf("QAOA count drifted")
	}
	if fc(t)(BernsteinVazirani(8, nil)).NumQubits() != 8 {
		t.Fatalf("BV width drifted")
	}
	if fc(t)(Grover(4, 1)).NumQubits() != 6 {
		t.Fatalf("Grover width drifted")
	}
	if NewRand(3).Int63() != NewRand(3).Int63() {
		t.Fatalf("NewRand not deterministic")
	}
	c := NewCircuit("x", 2)
	c.CX(0, 1)
	if c.NumGates() != 1 {
		t.Fatalf("NewCircuit broken")
	}
}

func TestFacadeFidelity(t *testing.T) {
	d, _ := DeviceFor(8, 4, Ring)
	l, _ := SequentialPlacement.Place(d, 8, nil)
	est, err := EstimateFidelity(fc(t)(GHZ(8)), l, DefaultLatencies(), DefaultFidelityModel())
	if err != nil {
		t.Fatal(err)
	}
	if est.Total <= 0 || est.Total >= 1 {
		t.Fatalf("fidelity = %v", est.Total)
	}
	if est.WeakGateErrorShare <= 0 {
		t.Fatalf("GHZ across chains should have weak-link error share: %+v", est)
	}
}

func TestFacadeShuttle(t *testing.T) {
	d, _ := DeviceFor(8, 4, Ring)
	l, _ := SequentialPlacement.Place(d, 8, nil)
	res, err := CompareShuttle(fc(t)(GHZ(8)), l, DefaultLatencies(), DefaultShuttleParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossGates == 0 || res.ShuttleMicros <= res.WeakLinkMicros {
		t.Fatalf("expected shuttling slower at α=2: %+v", res)
	}
	if !res.WeakLinkWins() {
		t.Fatalf("weak link should win at default costs")
	}
}

func TestFacadeTimeline(t *testing.T) {
	d, _ := DeviceFor(8, 4, Ring)
	l, _ := SequentialPlacement.Place(d, 8, nil)
	tl, err := BuildTimeline(fc(t)(GHZ(8)), l, DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan <= 0 || tl.Concurrency() != 1 {
		t.Fatalf("GHZ timeline = %+v", tl)
	}
	if !strings.Contains(tl.Gantt(40), "chain") {
		t.Fatalf("gantt malformed")
	}
}

func TestFacadeExtraApps(t *testing.T) {
	if fc(t)(QPE(4, 0.25)).NumQubits() != 5 {
		t.Fatalf("QPE width")
	}
	if fc(t)(VQEAnsatz(6, 2, 1)).NumTwoQubitGates() != 10 {
		t.Fatalf("VQE counts")
	}
	if fc(t)(WState(5)).NumQubits() != 5 {
		t.Fatalf("W width")
	}
	opt, stats := fc(t)(GHZ(4)).Optimize()
	if opt.NumGates() != 4 || stats.Total() != 0 {
		t.Fatalf("GHZ should be irreducible")
	}
}

func TestFacadeRouter(t *testing.T) {
	d, _ := DeviceFor(8, 4, Ring)
	l, _ := SequentialPlacement.Place(d, 8, nil)
	c := NewCircuit("hot", 8)
	for i := 0; i < 10; i++ {
		c.CX(0, 4)
	}
	res, err := LocalizeCircuit(c, l, DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 1 {
		t.Fatalf("migrations = %d", res.Migrations)
	}
}

// fc unwraps a facade circuit-generator result, failing the test on error.
func fc(t testing.TB) func(*Circuit, error) *Circuit {
	return func(c *Circuit, err error) *Circuit {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return c
	}
}
