package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: velociti
BenchmarkParallelModelQFT-8      	     200	     50000 ns/op
BenchmarkParallelModelQFT-8      	     200	     60000 ns/op
BenchmarkGateGraphConstruction-8 	     200	    200000 ns/op
BenchmarkNewThing               	     100	      1234 ns/op
PASS
ok  	velociti	1.234s
`

func writeTempBaseline(t *testing.T, b baseline) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchAveragesAndStripsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkParallelModelQFT"] != 55000 {
		t.Fatalf("average = %v, want 55000", got["BenchmarkParallelModelQFT"])
	}
	if got["BenchmarkGateGraphConstruction"] != 200000 {
		t.Fatalf("single = %v", got["BenchmarkGateGraphConstruction"])
	}
	if got["BenchmarkNewThing"] != 1234 {
		t.Fatalf("suffixless = %v", got["BenchmarkNewThing"])
	}
}

func TestRunReportsSpeedupsAndNotes(t *testing.T) {
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]float64{
		"BenchmarkParallelModelQFT":      178580,
		"BenchmarkGateGraphConstruction": 8304790,
		"BenchmarkMissing":               100,
	}})
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ok BenchmarkParallelModelQFT: 55000 ns/op vs baseline 178580 (3.25x faster)",
		"ok BenchmarkGateGraphConstruction",
		"WARN BenchmarkMissing: tracked in baseline but missing from input",
		"note BenchmarkNewThing: 1234 ns/op (not tracked in baseline)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlagsRegression(t *testing.T) {
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]float64{
		"BenchmarkParallelModelQFT": 10000, // sample's 55000 is 5.5x slower
	}})
	var out strings.Builder
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("without -fail a regression must not error: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkParallelModelQFT") {
		t.Fatalf("no regression line:\n%s", out.String())
	}
	err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBench), &out)
	if err == nil || !strings.Contains(err.Error(), "1 benchmark regression") {
		t.Fatalf("-fail err = %v", err)
	}
}

func TestRunWithinThresholdPasses(t *testing.T) {
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]float64{
		"BenchmarkParallelModelQFT": 50000, // 55000 is +10%, under 30%
	}})
	var out strings.Builder
	if err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(+10.0%)") {
		t.Fatalf("missing within-threshold line:\n%s", out.String())
	}
}

func TestUpdatePreservesTrackedSetAndNote(t *testing.T) {
	path := writeTempBaseline(t, baseline{
		Note: "reference numbers",
		Benchmarks: map[string]float64{
			"BenchmarkParallelModelQFT":      178580,
			"BenchmarkGateGraphConstruction": 8304790,
		},
	})
	var out strings.Builder
	if err := run([]string{"-update", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "reference numbers" {
		t.Fatalf("note = %q", got.Note)
	}
	if len(got.Benchmarks) != 2 || got.Benchmarks["BenchmarkParallelModelQFT"] != 55000 {
		t.Fatalf("benchmarks = %+v", got.Benchmarks)
	}
	if _, ok := got.Benchmarks["BenchmarkNewThing"]; ok {
		t.Fatal("untracked benchmark leaked into baseline")
	}
}

func TestUpdateCreatesFreshBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.json")
	var out strings.Builder
	if err := run([]string{"-update", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %+v", got.Benchmarks)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("want error on empty input")
	}
}

func TestCommittedBaselineMatchesRepoFile(t *testing.T) {
	// The committed repo baseline must parse and track the three CI smoke
	// benchmarks.
	b, err := readBaseline("../../BENCH_BASELINE.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"BenchmarkParallelModelQFT",
		"BenchmarkGateGraphConstruction",
		"BenchmarkDesignSpaceExploration",
	} {
		if b.Benchmarks[name] <= 0 {
			t.Errorf("baseline missing %s", name)
		}
	}
}
