package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: velociti
BenchmarkParallelModelQFT-8      	     200	     50000 ns/op
BenchmarkParallelModelQFT-8      	     200	     60000 ns/op
BenchmarkGateGraphConstruction-8 	     200	    200000 ns/op
BenchmarkNewThing               	     100	      1234 ns/op
PASS
ok  	velociti	1.234s
`

const sampleBenchMem = `goos: linux
BenchmarkDesignSpaceExploration-8 	     200	   4100000 ns/op	  221568 B/op	    1141 allocs/op
BenchmarkDesignSpaceExploration-8 	     200	   4300000 ns/op	  221570 B/op	    1141 allocs/op
BenchmarkParallelModelQFT-8      	     200	     50000 ns/op
PASS
`

// nsOnly builds a legacy bare-number entry.
func nsOnly(ns float64) metric { return metric{NsOp: ns} }

// full builds an entry gating all three metrics.
func full(ns, allocs, bytes float64) metric {
	return metric{NsOp: ns, AllocsOp: &allocs, BOp: &bytes}
}

func writeTempBaseline(t *testing.T, b baseline) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchAveragesAndStripsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkParallelModelQFT"].NsOp != 55000 {
		t.Fatalf("average = %v, want 55000", got["BenchmarkParallelModelQFT"].NsOp)
	}
	if got["BenchmarkGateGraphConstruction"].NsOp != 200000 {
		t.Fatalf("single = %v", got["BenchmarkGateGraphConstruction"].NsOp)
	}
	if got["BenchmarkNewThing"].NsOp != 1234 {
		t.Fatalf("suffixless = %v", got["BenchmarkNewThing"].NsOp)
	}
	if m := got["BenchmarkParallelModelQFT"]; m.AllocsOp != nil || m.BOp != nil {
		t.Fatalf("memory metrics appeared without ReportAllocs rows: %+v", m)
	}
}

func TestParseBenchMemoryColumns(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBenchMem))
	if err != nil {
		t.Fatal(err)
	}
	m := got["BenchmarkDesignSpaceExploration"]
	if m.NsOp != 4200000 {
		t.Fatalf("ns/op average = %v", m.NsOp)
	}
	if m.AllocsOp == nil || *m.AllocsOp != 1141 {
		t.Fatalf("allocs/op = %v", m.AllocsOp)
	}
	if m.BOp == nil || *m.BOp != 221569 {
		t.Fatalf("B/op average = %v", m.BOp)
	}
	if q := got["BenchmarkParallelModelQFT"]; q.AllocsOp != nil {
		t.Fatalf("memory metric leaked onto a row without columns: %+v", q)
	}
}

func TestMetricJSONRoundTrip(t *testing.T) {
	b := baseline{Benchmarks: map[string]metric{
		"BenchmarkLegacy": nsOnly(13465503),
		"BenchmarkGated":  full(4100000, 1141, 221568),
	}}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"BenchmarkLegacy":13465503`) {
		t.Fatalf("legacy entry not a bare number: %s", data)
	}
	if !strings.Contains(string(data), `"allocs_op":1141`) {
		t.Fatalf("gated entry missing allocs_op: %s", data)
	}
	var back baseline
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if m := back.Benchmarks["BenchmarkLegacy"]; m.NsOp != 13465503 || m.AllocsOp != nil {
		t.Fatalf("legacy round trip = %+v", m)
	}
	if m := back.Benchmarks["BenchmarkGated"]; *m.AllocsOp != 1141 || *m.BOp != 221568 || m.NsOp != 4100000 {
		t.Fatalf("gated round trip = %+v", m)
	}
}

func TestMetricJSONRejectsMissingNsOp(t *testing.T) {
	var m metric
	if err := json.Unmarshal([]byte(`{"allocs_op": 5}`), &m); err == nil {
		t.Fatal("want error for entry without ns_op")
	}
}

func TestRunReportsSpeedupsAndNotes(t *testing.T) {
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]metric{
		"BenchmarkParallelModelQFT":      nsOnly(178580),
		"BenchmarkGateGraphConstruction": nsOnly(8304790),
		"BenchmarkMissing":               nsOnly(100),
	}})
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ok BenchmarkParallelModelQFT: 55000 ns/op vs baseline 178580 (3.25x faster)",
		"ok BenchmarkGateGraphConstruction",
		"WARN BenchmarkMissing: tracked in baseline but missing from input",
		"note BenchmarkNewThing: 1234 ns/op (not tracked in baseline)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlagsRegression(t *testing.T) {
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]metric{
		"BenchmarkParallelModelQFT": nsOnly(10000), // sample's 55000 is 5.5x slower
	}})
	var out strings.Builder
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("without -fail a regression must not error: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkParallelModelQFT") {
		t.Fatalf("no regression line:\n%s", out.String())
	}
	err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBench), &out)
	if err == nil || !strings.Contains(err.Error(), "1 benchmark regression") {
		t.Fatalf("-fail err = %v", err)
	}
}

func TestRunWithinThresholdPasses(t *testing.T) {
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]metric{
		"BenchmarkParallelModelQFT": nsOnly(50000), // 55000 is +10%, under 30%
	}})
	var out strings.Builder
	if err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(+10.0%)") {
		t.Fatalf("missing within-threshold line:\n%s", out.String())
	}
}

func TestRunGatesAllocRegressionIndependently(t *testing.T) {
	// ns/op is well within its 30% tolerance but allocs/op grew 10%:
	// the alloc gate alone must trip.
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]metric{
		"BenchmarkDesignSpaceExploration": full(4200000, 1037, 221569),
	}})
	var out strings.Builder
	err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBenchMem), &out)
	if err == nil || !strings.Contains(err.Error(), "1 benchmark regression") {
		t.Fatalf("-fail err = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkDesignSpaceExploration: 1141 allocs/op") {
		t.Fatalf("no alloc regression line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok BenchmarkDesignSpaceExploration: 4200000 ns/op") {
		t.Fatalf("ns/op should pass:\n%s", out.String())
	}

	// Raising only the alloc tolerance clears the failure.
	out.Reset()
	if err := run([]string{"-baseline", path, "-fail", "-alloc-threshold", "0.2"}, strings.NewReader(sampleBenchMem), &out); err != nil {
		t.Fatalf("with loose alloc threshold: %v\n%s", err, out.String())
	}
}

func TestRunGatesBytesRegressionIndependently(t *testing.T) {
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]metric{
		"BenchmarkDesignSpaceExploration": full(4200000, 1141, 150000), // measured 221569 B/op is ~1.48x
	}})
	var out strings.Builder
	err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBenchMem), &out)
	if err == nil {
		t.Fatalf("want B/op regression\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkDesignSpaceExploration: 221569 B/op") {
		t.Fatalf("no B/op regression line:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-baseline", path, "-fail", "-bytes-threshold", "0.5"}, strings.NewReader(sampleBenchMem), &out); err != nil {
		t.Fatalf("with loose bytes threshold: %v\n%s", err, out.String())
	}
}

func TestRunWarnsWhenTrackedMetricUnmeasured(t *testing.T) {
	// The baseline gates allocs but the input rows carry no memory
	// columns: warn rather than silently pass or fail.
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]metric{
		"BenchmarkParallelModelQFT": full(178580, 10, 1000),
	}})
	var out strings.Builder
	if err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WARN BenchmarkParallelModelQFT: baseline tracks allocs/op but input has none") {
		t.Fatalf("missing allocs warn:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "WARN BenchmarkParallelModelQFT: baseline tracks B/op but input has none") {
		t.Fatalf("missing B/op warn:\n%s", out.String())
	}
}

func TestUpdatePreservesTrackedSetAndNote(t *testing.T) {
	path := writeTempBaseline(t, baseline{
		Note: "reference numbers",
		Benchmarks: map[string]metric{
			"BenchmarkParallelModelQFT":      nsOnly(178580),
			"BenchmarkGateGraphConstruction": nsOnly(8304790),
		},
	})
	var out strings.Builder
	if err := run([]string{"-update", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "reference numbers" {
		t.Fatalf("note = %q", got.Note)
	}
	if len(got.Benchmarks) != 2 || got.Benchmarks["BenchmarkParallelModelQFT"].NsOp != 55000 {
		t.Fatalf("benchmarks = %+v", got.Benchmarks)
	}
	if _, ok := got.Benchmarks["BenchmarkNewThing"]; ok {
		t.Fatal("untracked benchmark leaked into baseline")
	}
}

func TestUpdatePreservesMetricShape(t *testing.T) {
	// A legacy bare-number entry must stay bare even when the input
	// carries memory columns, and a gated entry keeps all its metrics.
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]metric{
		"BenchmarkParallelModelQFT":       nsOnly(178580),
		"BenchmarkDesignSpaceExploration": full(9000000, 2000, 400000),
	}})
	var out strings.Builder
	if err := run([]string{"-update", path}, strings.NewReader(sampleBenchMem), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"BenchmarkParallelModelQFT": 50000`) {
		t.Fatalf("legacy entry not preserved as bare number:\n%s", data)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	m := got.Benchmarks["BenchmarkDesignSpaceExploration"]
	if m.NsOp != 4200000 || m.AllocsOp == nil || *m.AllocsOp != 1141 || m.BOp == nil || *m.BOp != 221569 {
		t.Fatalf("gated entry = %+v", m)
	}
}

func TestUpdateRejectsDroppingTrackedMetric(t *testing.T) {
	path := writeTempBaseline(t, baseline{Benchmarks: map[string]metric{
		"BenchmarkParallelModelQFT": full(178580, 10, 1000),
	}})
	var out strings.Builder
	err := run([]string{"-update", path}, strings.NewReader(sampleBench), &out)
	if err == nil || !strings.Contains(err.Error(), "tracks allocs/op") {
		t.Fatalf("err = %v, want tracked-metric error", err)
	}
}

func TestUpdateCreatesFreshBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.json")
	var out strings.Builder
	if err := run([]string{"-update", path}, strings.NewReader(sampleBenchMem), &out); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", got.Benchmarks)
	}
	// Fresh files record every measured metric.
	if got.Benchmarks["BenchmarkDesignSpaceExploration"].AllocsOp == nil {
		t.Fatalf("fresh baseline dropped allocs: %+v", got.Benchmarks)
	}
}

const sampleBenchRatio = `goos: linux
BenchmarkStreamingEvalSmall-8 	     100	   1000000 ns/op	  100000 B/op	    500 allocs/op
BenchmarkStreamingEvalLarge-8 	      10	 100000000 ns/op	  105000 B/op	    520 allocs/op
PASS
`

// fptr builds a ratio bound.
func fptr(v float64) *float64 { return &v }

func TestRatioGateWithinBound(t *testing.T) {
	// Large/Small is 1.05x on B/op and 1.04x on allocs/op — both inside a
	// 1.1x bound. The 100x ns/op growth is NOT gated and must not trip.
	path := writeTempBaseline(t, baseline{
		Benchmarks: map[string]metric{"BenchmarkStreamingEvalSmall": nsOnly(1000000)},
		Ratios: map[string]ratioGate{
			"memory-flat": {
				Numerator:   "BenchmarkStreamingEvalLarge",
				Denominator: "BenchmarkStreamingEvalSmall",
				MaxBOp:      fptr(1.1),
				MaxAllocsOp: fptr(1.1),
			},
		},
	})
	var out strings.Builder
	if err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBenchRatio), &out); err != nil {
		t.Fatalf("within-bound ratio failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok ratio memory-flat: B/op 1.050x within max 1.10x") {
		t.Fatalf("missing B/op ratio line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok ratio memory-flat: allocs/op 1.040x within max 1.10x") {
		t.Fatalf("missing allocs/op ratio line:\n%s", out.String())
	}
	// A benchmark referenced only by a ratio is tracked, not an extra.
	if strings.Contains(out.String(), "note BenchmarkStreamingEvalLarge") {
		t.Fatalf("ratio-only benchmark reported as untracked:\n%s", out.String())
	}
}

func TestRatioGateFlagsRegression(t *testing.T) {
	path := writeTempBaseline(t, baseline{
		Benchmarks: map[string]metric{"BenchmarkStreamingEvalSmall": nsOnly(1000000)},
		Ratios: map[string]ratioGate{
			"memory-flat": {
				Numerator:   "BenchmarkStreamingEvalLarge",
				Denominator: "BenchmarkStreamingEvalSmall",
				MaxBOp:      fptr(1.02), // measured 1.05x
			},
		},
	})
	var out strings.Builder
	err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBenchRatio), &out)
	if err == nil || !strings.Contains(err.Error(), "1 benchmark regression") {
		t.Fatalf("-fail err = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION ratio memory-flat: B/op 1.050x vs max 1.02x (105000 / 100000)") {
		t.Fatalf("no ratio regression line:\n%s", out.String())
	}
}

func TestRatioWarnsOnMissingInputs(t *testing.T) {
	// Neither side of the ratio is in the sample: warn, never fail.
	path := writeTempBaseline(t, baseline{
		Benchmarks: map[string]metric{"BenchmarkParallelModelQFT": nsOnly(178580)},
		Ratios: map[string]ratioGate{
			"memory-flat": {
				Numerator:   "BenchmarkStreamingEvalLarge",
				Denominator: "BenchmarkStreamingEvalSmall",
				MaxBOp:      fptr(1.1),
			},
		},
	})
	var out strings.Builder
	if err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WARN ratio memory-flat: needs BenchmarkStreamingEvalLarge and BenchmarkStreamingEvalSmall") {
		t.Fatalf("missing ratio warn:\n%s", out.String())
	}
}

func TestRatioWarnsOnMissingMetric(t *testing.T) {
	// Both benchmarks present but the run carried no memory columns: the
	// B/op ratio cannot be evaluated.
	path := writeTempBaseline(t, baseline{
		Benchmarks: map[string]metric{"BenchmarkParallelModelQFT": nsOnly(178580)},
		Ratios: map[string]ratioGate{
			"graph-vs-model": {
				Numerator:   "BenchmarkGateGraphConstruction",
				Denominator: "BenchmarkParallelModelQFT",
				MaxBOp:      fptr(1.1),
				MaxNsOp:     fptr(100),
			},
		},
	})
	var out strings.Builder
	if err := run([]string{"-baseline", path, "-fail"}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WARN ratio graph-vs-model: input lacks B/op") {
		t.Fatalf("missing metric warn:\n%s", out.String())
	}
	// The ns/op ratio (200000/55000 ≈ 3.6x, max 100x) still evaluates.
	if !strings.Contains(out.String(), "ok ratio graph-vs-model: ns/op 3.636x within max 100.00x") {
		t.Fatalf("ns/op ratio not evaluated:\n%s", out.String())
	}
}

func TestUpdatePreservesRatios(t *testing.T) {
	path := writeTempBaseline(t, baseline{
		Benchmarks: map[string]metric{"BenchmarkParallelModelQFT": nsOnly(178580)},
		Ratios: map[string]ratioGate{
			"memory-flat": {
				Numerator:   "BenchmarkStreamingEvalLarge",
				Denominator: "BenchmarkStreamingEvalSmall",
				MaxBOp:      fptr(1.1),
			},
		},
	})
	var out strings.Builder
	if err := run([]string{"-update", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got.Ratios["memory-flat"]
	if !ok || r.MaxBOp == nil || *r.MaxBOp != 1.1 {
		t.Fatalf("-update dropped the ratio section: %+v", got.Ratios)
	}
}

func TestReadBaselineRejectsMalformedRatio(t *testing.T) {
	for name, r := range map[string]ratioGate{
		"no-denominator": {Numerator: "BenchmarkA", MaxBOp: fptr(1.1)},
		"no-bound":       {Numerator: "BenchmarkA", Denominator: "BenchmarkB"},
	} {
		path := writeTempBaseline(t, baseline{
			Benchmarks: map[string]metric{"BenchmarkParallelModelQFT": nsOnly(1)},
			Ratios:     map[string]ratioGate{name: r},
		})
		if _, err := readBaseline(path); err == nil {
			t.Errorf("ratio %s accepted, want error", name)
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("want error on empty input")
	}
}

func TestCommittedBaselineMatchesRepoFile(t *testing.T) {
	// The committed repo baseline must parse, track the CI smoke
	// benchmarks, and gate the grouped explorer's allocations.
	b, err := readBaseline("../../BENCH_BASELINE.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"BenchmarkParallelModelQFT",
		"BenchmarkGateGraphConstruction",
		"BenchmarkDesignSpaceExploration",
		"BenchmarkLegacyDesignSpaceExploration",
	} {
		if b.Benchmarks[name].NsOp <= 0 {
			t.Errorf("baseline missing %s", name)
		}
	}
	if m := b.Benchmarks["BenchmarkDesignSpaceExploration"]; m.AllocsOp == nil || *m.AllocsOp <= 0 {
		t.Errorf("grouped explorer benchmark must gate allocs/op, got %+v", m)
	}
}
