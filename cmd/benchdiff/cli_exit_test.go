package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain turns this test binary into the real CLI when the re-exec
// marker is set, so the exit-status tests below observe main()'s true
// exit code and stderr.
func TestMain(m *testing.M) {
	if os.Getenv("VELOCITI_CLI_EXIT_TEST") == "1" {
		args := []string{os.Args[0]}
		if raw := os.Getenv("VELOCITI_CLI_EXIT_ARGS"); raw != "" {
			args = append(args, strings.Split(raw, "\x1f")...)
		}
		os.Args = args
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func execMain(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"VELOCITI_CLI_EXIT_TEST=1",
		"VELOCITI_CLI_EXIT_ARGS="+strings.Join(args, "\x1f"))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = io.Discard
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec failed: %v", err)
		}
		code = ee.ExitCode()
	}
	return code, stderr.String()
}

func checkDiagnostic(t *testing.T, code int, stderr, prefix, substr string) {
	t.Helper()
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
	}
	if strings.Contains(stderr, "goroutine ") || strings.Contains(stderr, "panic:") {
		t.Fatalf("stderr contains a stack trace:\n%s", stderr)
	}
	line := strings.TrimSuffix(stderr, "\n")
	if line == "" || strings.Contains(line, "\n") {
		t.Errorf("stderr should be exactly one diagnostic line, got %q", stderr)
	}
	if !strings.HasPrefix(line, prefix) {
		t.Errorf("stderr = %q, want prefix %q", line, prefix)
	}
	if !strings.Contains(line, substr) {
		t.Errorf("stderr = %q, want it to mention %q", line, substr)
	}
}

func TestMalformedInputExitStatus(t *testing.T) {
	dir := t.TempDir()
	benchOut := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchOut, []byte("BenchmarkFoo-8   \t 200\t  199960 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badBase := filepath.Join(dir, "base.json")
	if err := os.WriteFile(badBase, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	emptyBase := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(emptyBase, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		args   []string
		substr string
	}{
		{"missing input file", []string{filepath.Join(dir, "nope.txt")}, "no such file"},
		{"empty input", nil, "no benchmark results"}, // stdin is /dev/null in the subprocess
		{"missing baseline", []string{"-baseline", filepath.Join(dir, "nope.json"), benchOut}, "no such file"},
		{"malformed baseline", []string{"-baseline", badBase, benchOut}, "invalid character"},
		{"empty baseline", []string{"-baseline", emptyBase, benchOut}, "no benchmarks recorded"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := execMain(t, tc.args...)
			checkDiagnostic(t, code, stderr, "benchdiff:", tc.substr)
		})
	}
}
