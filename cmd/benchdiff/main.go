// Command benchdiff compares `go test -bench` output against a committed
// baseline and flags regressions — the check CI's benchmark-smoke job runs
// so hot-path slowdowns surface in the pull request, not after. Three
// metrics are gated, each with its own tolerance: ns/op (timing, noisy),
// allocs/op (deterministic, tight tolerance), and B/op.
//
//	go test -run '^$' -bench . -benchtime 200x . | benchdiff
//	go test -run '^$' -bench . . | benchdiff -fail            # exit 1 on regression
//	go test -run '^$' -bench . -count 3 . | benchdiff -update BENCH_BASELINE.json
//
// Repeated counts of the same benchmark are averaged. Benchmark names are
// matched with the -N GOMAXPROCS suffix stripped, so baselines recorded on
// different core counts compare cleanly.
//
// Baseline entries come in two forms: a bare number is ns/op only (the
// legacy format), and an object tracks any of ns_op, allocs_op, and b_op:
//
//	"benchmarks": {
//	  "BenchmarkLegacy": 13465503,
//	  "BenchmarkGated":  {"ns_op": 4100000, "allocs_op": 1141, "b_op": 221568}
//	}
//
// A benchmark is gated exactly on the metrics its entry tracks; -update
// preserves each entry's tracked-metric shape and errors if the input
// lacks a tracked metric (allocs require ReportAllocs or -benchmem).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline is the committed reference file format.
type baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]metric `json:"benchmarks"`
}

// metric is one benchmark's tracked values. NsOp is always tracked;
// AllocsOp and BOp are optional — nil means "not gated", which is distinct
// from an explicit zero.
type metric struct {
	NsOp     float64
	AllocsOp *float64
	BOp      *float64
}

// MarshalJSON writes the legacy bare number when only ns/op is tracked
// and the object form otherwise.
func (m metric) MarshalJSON() ([]byte, error) {
	if m.AllocsOp == nil && m.BOp == nil {
		return json.Marshal(m.NsOp)
	}
	obj := map[string]float64{"ns_op": m.NsOp}
	if m.AllocsOp != nil {
		obj["allocs_op"] = *m.AllocsOp
	}
	if m.BOp != nil {
		obj["b_op"] = *m.BOp
	}
	return json.Marshal(obj)
}

// UnmarshalJSON accepts both entry forms.
func (m *metric) UnmarshalJSON(data []byte) error {
	if t := bytes.TrimSpace(data); len(t) > 0 && t[0] == '{' {
		var obj struct {
			NsOp     *float64 `json:"ns_op"`
			AllocsOp *float64 `json:"allocs_op"`
			BOp      *float64 `json:"b_op"`
		}
		if err := json.Unmarshal(data, &obj); err != nil {
			return err
		}
		if obj.NsOp == nil {
			return fmt.Errorf("benchmark entry missing ns_op")
		}
		m.NsOp, m.AllocsOp, m.BOp = *obj.NsOp, obj.AllocsOp, obj.BOp
		return nil
	}
	m.AllocsOp, m.BOp = nil, nil
	return json.Unmarshal(data, &m.NsOp)
}

// benchLine matches one result row of `go test -bench` output, e.g.
// "BenchmarkX-8   200   199960 ns/op   221568 B/op   1141 allocs/op"
// (the memory columns appear under ReportAllocs or -benchmem).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// thresholds bundles the per-metric tolerances.
type thresholds struct {
	ns, allocs, bytes float64
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath = fs.String("baseline", "BENCH_BASELINE.json", "baseline JSON file")
		thr      thresholds
		fail     = fs.Bool("fail", false, "exit non-zero when a regression is found")
		update   = fs.String("update", "", "write measured values back to this baseline file instead of comparing")
	)
	fs.Float64Var(&thr.ns, "threshold", 0.30, "relative ns/op increase that counts as a regression")
	fs.Float64Var(&thr.allocs, "alloc-threshold", 0.05, "relative allocs/op increase that counts as a regression")
	fs.Float64Var(&thr.bytes, "bytes-threshold", 0.15, "relative B/op increase that counts as a regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	if *update != "" {
		return writeBaseline(*update, got)
	}
	base, err := readBaseline(*basePath)
	if err != nil {
		return err
	}
	regressions := report(out, base, got, thr)
	if regressions > 0 && *fail {
		return fmt.Errorf("%d benchmark regression(s) beyond threshold", regressions)
	}
	return nil
}

// parseBench extracts the per-benchmark metrics, averaging repeated counts
// and stripping the -N GOMAXPROCS suffix from names. AllocsOp/BOp are set
// only when at least one row reported them.
func parseBench(in io.Reader) (map[string]metric, error) {
	type acc struct {
		ns, bytes, allocs float64
		n, nb, na         int
	}
	accs := map[string]*acc{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		a := accs[m[1]]
		if a == nil {
			a = &acc{}
			accs[m[1]] = a
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		a.ns += ns
		a.n++
		if m[3] != "" {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
			}
			a.bytes += v
			a.nb++
		}
		if m[4] != "" {
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			a.allocs += v
			a.na++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]metric, len(accs))
	for name, a := range accs {
		m := metric{NsOp: a.ns / float64(a.n)}
		if a.na > 0 {
			v := a.allocs / float64(a.na)
			m.AllocsOp = &v
		}
		if a.nb > 0 {
			v := a.bytes / float64(a.nb)
			m.BOp = &v
		}
		out[name] = m
	}
	return out, nil
}

func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &b, nil
}

// writeBaseline records the measured averages. When the file already
// exists, the note, the tracked benchmark set, AND each entry's tracked
// metric shape are preserved; dropping a tracked metric is an error, so a
// run without allocation reporting cannot silently shed the allocs gate.
func writeBaseline(path string, got map[string]metric) error {
	b := baseline{Benchmarks: got}
	if old, err := readBaseline(path); err == nil {
		b.Note = old.Note
		b.Benchmarks = map[string]metric{}
		for name, ref := range old.Benchmarks {
			m, ok := got[name]
			if !ok {
				continue
			}
			if ref.AllocsOp != nil && m.AllocsOp == nil {
				return fmt.Errorf("%s tracks allocs/op for %s but the input has none (run with ReportAllocs or -benchmem)", path, name)
			}
			if ref.BOp != nil && m.BOp == nil {
				return fmt.Errorf("%s tracks B/op for %s but the input has none (run with ReportAllocs or -benchmem)", path, name)
			}
			if ref.AllocsOp == nil {
				m.AllocsOp = nil
			}
			if ref.BOp == nil {
				m.BOp = nil
			}
			b.Benchmarks[name] = m
		}
		if len(b.Benchmarks) == 0 {
			return fmt.Errorf("input contains none of the benchmarks tracked by %s", path)
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// report prints one line per tracked (benchmark, metric) pair and returns
// how many regressed beyond their metric's threshold.
func report(out io.Writer, base *baseline, got map[string]metric, thr thresholds) int {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		ref := base.Benchmarks[name]
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(out, "WARN %s: tracked in baseline but missing from input\n", name)
			continue
		}
		if ref.NsOp <= 0 {
			fmt.Fprintf(out, "WARN %s: non-positive baseline %g ns/op\n", name, ref.NsOp)
		} else {
			regressions += compareMetric(out, name, "ns/op", cur.NsOp, ref.NsOp, thr.ns)
		}
		if ref.AllocsOp != nil {
			if cur.AllocsOp == nil {
				fmt.Fprintf(out, "WARN %s: baseline tracks allocs/op but input has none (run with ReportAllocs or -benchmem)\n", name)
			} else {
				regressions += compareMetric(out, name, "allocs/op", *cur.AllocsOp, *ref.AllocsOp, thr.allocs)
			}
		}
		if ref.BOp != nil {
			if cur.BOp == nil {
				fmt.Fprintf(out, "WARN %s: baseline tracks B/op but input has none (run with ReportAllocs or -benchmem)\n", name)
			} else {
				regressions += compareMetric(out, name, "B/op", *cur.BOp, *ref.BOp, thr.bytes)
			}
		}
	}
	var extras []string
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(out, "note %s: %.0f ns/op (not tracked in baseline)\n", name, got[name].NsOp)
	}
	return regressions
}

// compareMetric prints one comparison line and returns 1 on regression.
func compareMetric(out io.Writer, name, unit string, cur, ref, threshold float64) int {
	switch {
	case cur > ref*(1+threshold):
		fmt.Fprintf(out, "REGRESSION %s: %.0f %s vs baseline %.0f (%.2fx slower, threshold %.0f%%)\n",
			name, cur, unit, ref, cur/ref, threshold*100)
		return 1
	case cur < ref:
		fmt.Fprintf(out, "ok %s: %.0f %s vs baseline %.0f (%.2fx faster)\n", name, cur, unit, ref, ref/cur)
	case cur == 0: // ref is 0 too: cur > 0 would have regressed above
		fmt.Fprintf(out, "ok %s: 0 %s vs baseline 0\n", name, unit)
	default:
		fmt.Fprintf(out, "ok %s: %.0f %s vs baseline %.0f (+%.1f%%)\n", name, cur, unit, ref, (cur/ref-1)*100)
	}
	return 0
}
