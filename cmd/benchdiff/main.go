// Command benchdiff compares `go test -bench` output against a committed
// ns/op baseline and flags regressions — the check CI's benchmark-smoke
// job runs so hot-path slowdowns surface in the pull request, not after.
//
//	go test -run '^$' -bench . -benchtime 200x . | benchdiff
//	go test -run '^$' -bench . . | benchdiff -fail            # exit 1 on regression
//	go test -run '^$' -bench . -count 3 . | benchdiff -update BENCH_BASELINE.json
//
// Repeated counts of the same benchmark are averaged. Benchmark names are
// matched with the -N GOMAXPROCS suffix stripped, so baselines recorded on
// different core counts compare cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline is the committed reference file format.
type baseline struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one result row of `go test -bench` output, e.g.
// "BenchmarkGateGraphConstruction-8   	 200	  199960 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath  = fs.String("baseline", "BENCH_BASELINE.json", "baseline JSON file")
		threshold = fs.Float64("threshold", 0.30, "relative ns/op increase that counts as a regression")
		fail      = fs.Bool("fail", false, "exit non-zero when a regression is found")
		update    = fs.String("update", "", "write measured ns/op back to this baseline file instead of comparing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	if *update != "" {
		return writeBaseline(*update, got)
	}
	base, err := readBaseline(*basePath)
	if err != nil {
		return err
	}
	regressions := report(out, base, got, *threshold)
	if regressions > 0 && *fail {
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%%", regressions, *threshold*100)
	}
	return nil
}

// parseBench extracts ns/op per benchmark, averaging repeated counts and
// stripping the -N GOMAXPROCS suffix from names.
func parseBench(in io.Reader) (map[string]float64, error) {
	sums := map[string]float64{}
	counts := map[string]int{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		sums[m[1]] += ns
		counts[m[1]]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name := range sums {
		sums[name] /= float64(counts[name])
	}
	return sums, nil
}

func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &b, nil
}

// writeBaseline records the measured averages, preserving the note (and
// the tracked benchmark set, when the file already exists).
func writeBaseline(path string, got map[string]float64) error {
	b := baseline{Benchmarks: got}
	if old, err := readBaseline(path); err == nil {
		b.Note = old.Note
		b.Benchmarks = map[string]float64{}
		for name := range old.Benchmarks {
			if ns, ok := got[name]; ok {
				b.Benchmarks[name] = ns
			}
		}
		if len(b.Benchmarks) == 0 {
			return fmt.Errorf("input contains none of the benchmarks tracked by %s", path)
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// report prints one line per tracked benchmark and returns how many
// regressed beyond the threshold.
func report(out io.Writer, base *baseline, got map[string]float64, threshold float64) int {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		ref := base.Benchmarks[name]
		cur, ok := got[name]
		switch {
		case !ok:
			fmt.Fprintf(out, "WARN %s: tracked in baseline but missing from input\n", name)
		case ref <= 0:
			fmt.Fprintf(out, "WARN %s: non-positive baseline %g ns/op\n", name, ref)
		case cur > ref*(1+threshold):
			regressions++
			fmt.Fprintf(out, "REGRESSION %s: %.0f ns/op vs baseline %.0f (%.2fx slower, threshold %.0f%%)\n",
				name, cur, ref, cur/ref, threshold*100)
		case cur < ref:
			fmt.Fprintf(out, "ok %s: %.0f ns/op vs baseline %.0f (%.2fx faster)\n", name, cur, ref, ref/cur)
		default:
			fmt.Fprintf(out, "ok %s: %.0f ns/op vs baseline %.0f (+%.1f%%)\n", name, cur, ref, (cur/ref-1)*100)
		}
	}
	var extras []string
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(out, "note %s: %.0f ns/op (not tracked in baseline)\n", name, got[name])
	}
	return regressions
}
