// Command benchdiff compares `go test -bench` output against a committed
// baseline and flags regressions — the check CI's benchmark-smoke job runs
// so hot-path slowdowns surface in the pull request, not after. Three
// metrics are gated, each with its own tolerance: ns/op (timing, noisy),
// allocs/op (deterministic, tight tolerance), and B/op.
//
//	go test -run '^$' -bench . -benchtime 200x . | benchdiff
//	go test -run '^$' -bench . . | benchdiff -fail            # exit 1 on regression
//	go test -run '^$' -bench . -count 3 . | benchdiff -update BENCH_BASELINE.json
//
// Repeated counts of the same benchmark are averaged. Benchmark names are
// matched with the -N GOMAXPROCS suffix stripped, so baselines recorded on
// different core counts compare cleanly.
//
// Baseline entries come in two forms: a bare number is ns/op only (the
// legacy format), and an object tracks any of ns_op, allocs_op, and b_op:
//
//	"benchmarks": {
//	  "BenchmarkLegacy": 13465503,
//	  "BenchmarkGated":  {"ns_op": 4100000, "allocs_op": 1141, "b_op": 221568}
//	}
//
// A benchmark is gated exactly on the metrics its entry tracks; -update
// preserves each entry's tracked-metric shape and errors if the input
// lacks a tracked metric (allocs require ReportAllocs or -benchmem).
//
// A baseline can additionally gate RATIOS between two benchmarks from the
// same run — the scaling contract "metric X of A stays within factor R of
// B" that absolute thresholds cannot express (both sides drift together
// with hardware, the ratio does not):
//
//	"ratios": {
//	  "streaming-memory-flat": {
//	    "numerator": "BenchmarkStreamingEvalLarge",
//	    "denominator": "BenchmarkStreamingEvalSmall",
//	    "max_b_op": 1.1, "max_allocs_op": 1.1
//	  }
//	}
//
// Each ratio entry gates exactly the metrics it sets a max_* bound for;
// missing inputs WARN rather than fail, mirroring the benchmark gates.
// -update leaves the ratios section untouched (bounds are contracts, not
// measurements).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline is the committed reference file format.
type baseline struct {
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]metric    `json:"benchmarks"`
	Ratios     map[string]ratioGate `json:"ratios,omitempty"`
}

// ratioGate bounds the ratio numerator/denominator of two benchmarks in
// the same run, per metric. A nil bound means that metric's ratio is not
// gated; each entry must set at least one.
type ratioGate struct {
	Numerator   string   `json:"numerator"`
	Denominator string   `json:"denominator"`
	MaxNsOp     *float64 `json:"max_ns_op,omitempty"`
	MaxAllocsOp *float64 `json:"max_allocs_op,omitempty"`
	MaxBOp      *float64 `json:"max_b_op,omitempty"`
}

// metric is one benchmark's tracked values. NsOp is always tracked;
// AllocsOp and BOp are optional — nil means "not gated", which is distinct
// from an explicit zero.
type metric struct {
	NsOp     float64
	AllocsOp *float64
	BOp      *float64
}

// MarshalJSON writes the legacy bare number when only ns/op is tracked
// and the object form otherwise.
func (m metric) MarshalJSON() ([]byte, error) {
	if m.AllocsOp == nil && m.BOp == nil {
		return json.Marshal(m.NsOp)
	}
	obj := map[string]float64{"ns_op": m.NsOp}
	if m.AllocsOp != nil {
		obj["allocs_op"] = *m.AllocsOp
	}
	if m.BOp != nil {
		obj["b_op"] = *m.BOp
	}
	return json.Marshal(obj)
}

// UnmarshalJSON accepts both entry forms.
func (m *metric) UnmarshalJSON(data []byte) error {
	if t := bytes.TrimSpace(data); len(t) > 0 && t[0] == '{' {
		var obj struct {
			NsOp     *float64 `json:"ns_op"`
			AllocsOp *float64 `json:"allocs_op"`
			BOp      *float64 `json:"b_op"`
		}
		if err := json.Unmarshal(data, &obj); err != nil {
			return err
		}
		if obj.NsOp == nil {
			return fmt.Errorf("benchmark entry missing ns_op")
		}
		m.NsOp, m.AllocsOp, m.BOp = *obj.NsOp, obj.AllocsOp, obj.BOp
		return nil
	}
	m.AllocsOp, m.BOp = nil, nil
	return json.Unmarshal(data, &m.NsOp)
}

// benchLine matches one result row of `go test -bench` output, e.g.
// "BenchmarkX-8   200   199960 ns/op   221568 B/op   1141 allocs/op"
// (the memory columns appear under ReportAllocs or -benchmem).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// thresholds bundles the per-metric tolerances.
type thresholds struct {
	ns, allocs, bytes float64
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath = fs.String("baseline", "BENCH_BASELINE.json", "baseline JSON file")
		thr      thresholds
		fail     = fs.Bool("fail", false, "exit non-zero when a regression is found")
		update   = fs.String("update", "", "write measured values back to this baseline file instead of comparing")
	)
	fs.Float64Var(&thr.ns, "threshold", 0.30, "relative ns/op increase that counts as a regression")
	fs.Float64Var(&thr.allocs, "alloc-threshold", 0.05, "relative allocs/op increase that counts as a regression")
	fs.Float64Var(&thr.bytes, "bytes-threshold", 0.15, "relative B/op increase that counts as a regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	if *update != "" {
		return writeBaseline(*update, got)
	}
	base, err := readBaseline(*basePath)
	if err != nil {
		return err
	}
	regressions := report(out, base, got, thr)
	if regressions > 0 && *fail {
		return fmt.Errorf("%d benchmark regression(s) beyond threshold", regressions)
	}
	return nil
}

// parseBench extracts the per-benchmark metrics, averaging repeated counts
// and stripping the -N GOMAXPROCS suffix from names. AllocsOp/BOp are set
// only when at least one row reported them.
func parseBench(in io.Reader) (map[string]metric, error) {
	type acc struct {
		ns, bytes, allocs float64
		n, nb, na         int
	}
	accs := map[string]*acc{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		a := accs[m[1]]
		if a == nil {
			a = &acc{}
			accs[m[1]] = a
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		a.ns += ns
		a.n++
		if m[3] != "" {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
			}
			a.bytes += v
			a.nb++
		}
		if m[4] != "" {
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			a.allocs += v
			a.na++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]metric, len(accs))
	for name, a := range accs {
		m := metric{NsOp: a.ns / float64(a.n)}
		if a.na > 0 {
			v := a.allocs / float64(a.na)
			m.AllocsOp = &v
		}
		if a.nb > 0 {
			v := a.bytes / float64(a.nb)
			m.BOp = &v
		}
		out[name] = m
	}
	return out, nil
}

func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	for name, r := range b.Ratios {
		if r.Numerator == "" || r.Denominator == "" {
			return nil, fmt.Errorf("%s: ratio %s needs both numerator and denominator", path, name)
		}
		if r.MaxNsOp == nil && r.MaxAllocsOp == nil && r.MaxBOp == nil {
			return nil, fmt.Errorf("%s: ratio %s gates no metric (set max_ns_op, max_allocs_op, or max_b_op)", path, name)
		}
	}
	return &b, nil
}

// writeBaseline records the measured averages. When the file already
// exists, the note, the tracked benchmark set, AND each entry's tracked
// metric shape are preserved; dropping a tracked metric is an error, so a
// run without allocation reporting cannot silently shed the allocs gate.
func writeBaseline(path string, got map[string]metric) error {
	b := baseline{Benchmarks: got}
	if old, err := readBaseline(path); err == nil {
		b.Note = old.Note
		// Ratio bounds are contracts, not measurements: always preserved.
		b.Ratios = old.Ratios
		b.Benchmarks = map[string]metric{}
		for name, ref := range old.Benchmarks {
			m, ok := got[name]
			if !ok {
				continue
			}
			if ref.AllocsOp != nil && m.AllocsOp == nil {
				return fmt.Errorf("%s tracks allocs/op for %s but the input has none (run with ReportAllocs or -benchmem)", path, name)
			}
			if ref.BOp != nil && m.BOp == nil {
				return fmt.Errorf("%s tracks B/op for %s but the input has none (run with ReportAllocs or -benchmem)", path, name)
			}
			if ref.AllocsOp == nil {
				m.AllocsOp = nil
			}
			if ref.BOp == nil {
				m.BOp = nil
			}
			b.Benchmarks[name] = m
		}
		if len(b.Benchmarks) == 0 {
			return fmt.Errorf("input contains none of the benchmarks tracked by %s", path)
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// report prints one line per tracked (benchmark, metric) pair and returns
// how many regressed beyond their metric's threshold.
func report(out io.Writer, base *baseline, got map[string]metric, thr thresholds) int {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		ref := base.Benchmarks[name]
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(out, "WARN %s: tracked in baseline but missing from input\n", name)
			continue
		}
		if ref.NsOp <= 0 {
			fmt.Fprintf(out, "WARN %s: non-positive baseline %g ns/op\n", name, ref.NsOp)
		} else {
			regressions += compareMetric(out, name, "ns/op", cur.NsOp, ref.NsOp, thr.ns)
		}
		if ref.AllocsOp != nil {
			if cur.AllocsOp == nil {
				fmt.Fprintf(out, "WARN %s: baseline tracks allocs/op but input has none (run with ReportAllocs or -benchmem)\n", name)
			} else {
				regressions += compareMetric(out, name, "allocs/op", *cur.AllocsOp, *ref.AllocsOp, thr.allocs)
			}
		}
		if ref.BOp != nil {
			if cur.BOp == nil {
				fmt.Fprintf(out, "WARN %s: baseline tracks B/op but input has none (run with ReportAllocs or -benchmem)\n", name)
			} else {
				regressions += compareMetric(out, name, "B/op", *cur.BOp, *ref.BOp, thr.bytes)
			}
		}
	}
	rnames := make([]string, 0, len(base.Ratios))
	for name := range base.Ratios {
		rnames = append(rnames, name)
	}
	sort.Strings(rnames)
	for _, name := range rnames {
		r := base.Ratios[name]
		num, okN := got[r.Numerator]
		den, okD := got[r.Denominator]
		if !okN || !okD {
			fmt.Fprintf(out, "WARN ratio %s: needs %s and %s in the input\n", name, r.Numerator, r.Denominator)
			continue
		}
		regressions += compareRatio(out, name, "ns/op", &num.NsOp, &den.NsOp, r.MaxNsOp)
		regressions += compareRatio(out, name, "allocs/op", num.AllocsOp, den.AllocsOp, r.MaxAllocsOp)
		regressions += compareRatio(out, name, "B/op", num.BOp, den.BOp, r.MaxBOp)
	}
	var extras []string
	for name := range got {
		if !tracked(base, name) {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(out, "note %s: %.0f ns/op (not tracked in baseline)\n", name, got[name].NsOp)
	}
	return regressions
}

// tracked reports whether a benchmark participates in any gate — its own
// entry or either side of a ratio.
func tracked(base *baseline, name string) bool {
	if _, ok := base.Benchmarks[name]; ok {
		return true
	}
	for _, r := range base.Ratios {
		if r.Numerator == name || r.Denominator == name {
			return true
		}
	}
	return false
}

// compareRatio prints one ratio-gate line and returns 1 on regression. A
// nil max means the metric's ratio is not gated; a missing metric or a
// non-positive denominator WARNs (the gate cannot be evaluated) rather
// than fails, mirroring the benchmark gates.
func compareRatio(out io.Writer, name, unit string, num, den, max *float64) int {
	if max == nil {
		return 0
	}
	if num == nil || den == nil {
		fmt.Fprintf(out, "WARN ratio %s: input lacks %s (run with ReportAllocs or -benchmem)\n", name, unit)
		return 0
	}
	if *den <= 0 {
		fmt.Fprintf(out, "WARN ratio %s: non-positive denominator %g %s\n", name, *den, unit)
		return 0
	}
	ratio := *num / *den
	if ratio > *max {
		fmt.Fprintf(out, "REGRESSION ratio %s: %s %.3fx vs max %.2fx (%.0f / %.0f)\n",
			name, unit, ratio, *max, *num, *den)
		return 1
	}
	fmt.Fprintf(out, "ok ratio %s: %s %.3fx within max %.2fx\n", name, unit, ratio, *max)
	return 0
}

// compareMetric prints one comparison line and returns 1 on regression.
func compareMetric(out io.Writer, name, unit string, cur, ref, threshold float64) int {
	switch {
	case cur > ref*(1+threshold):
		fmt.Fprintf(out, "REGRESSION %s: %.0f %s vs baseline %.0f (%.2fx slower, threshold %.0f%%)\n",
			name, cur, unit, ref, cur/ref, threshold*100)
		return 1
	case cur < ref:
		fmt.Fprintf(out, "ok %s: %.0f %s vs baseline %.0f (%.2fx faster)\n", name, cur, unit, ref, ref/cur)
	case cur == 0: // ref is 0 too: cur > 0 would have regressed above
		fmt.Fprintf(out, "ok %s: 0 %s vs baseline 0\n", name, unit)
	default:
		fmt.Fprintf(out, "ok %s: %.0f %s vs baseline %.0f (+%.1f%%)\n", name, cur, unit, ref, (cur/ref-1)*100)
	}
	return 0
}
