// Command velociti-vet is the repository's contract checker: it loads
// every package in the module with the stdlib toolchain, type-checks
// it, and runs the seven static contract passes from internal/analysis
// (panicguard, errcheck-lite, determinism, floatsum, keycover, ctxflow,
// lockguard) that enforce the invariants DESIGN.md §"Static contracts"
// documents. The summary-based passes always reason over whole-module
// call graphs, even when a package subset is selected.
//
//	velociti-vet ./...                        # whole module (CI gate)
//	velociti-vet ./internal/perf ./internal/pool
//	velociti-vet -format github ./...         # PR annotation lines
//	velociti-vet -allowlist analysis/panic_allowlist.txt ./...
//
// Exit status follows the repo-wide CLI contract: 0 clean, 1 invalid
// input or usage (one-line "velociti-vet: invalid input: ..."
// diagnostic), 2 findings (one "file:line:col: [pass] message" line
// each — or one "::error file=..." GitHub annotation under
// -format github — deterministically ordered).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"velociti/internal/analysis"
	"velociti/internal/verr"
)

const defaultAllowlist = "analysis/panic_allowlist.txt"

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		// Input-kind failures get an explicit marker so scripts (and
		// humans) can tell a bad invocation from a framework bug.
		if verr.IsInput(err) {
			fmt.Fprintln(os.Stderr, "velociti-vet: invalid input:", err)
		} else {
			fmt.Fprintln(os.Stderr, "velociti-vet:", err)
		}
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the checker and returns the exit code (0 clean, 2
// findings) or an error (exit 1).
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("velociti-vet", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	allowPath := fs.String("allowlist", "", "panic allowlist file (default "+defaultAllowlist+" at the module root, if present)")
	format := fs.String("format", "text", `output format: "text" (file:line:col lines) or "github" (::error annotations)`)
	if err := fs.Parse(args); err != nil {
		return 0, verr.Inputf("%w (usage: velociti-vet [-allowlist file] [-format text|github] [packages])", err)
	}
	if *format != "text" && *format != "github" {
		return 0, verr.Inputf("unknown -format %q (want text or github)", *format)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return 0, verr.Inputf("%w", err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		return 0, verr.Inputf("%w", err)
	}
	pkgs, err := selectPackages(mod, cwd, patterns)
	if err != nil {
		return 0, err
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return 0, verr.Inputf("package %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}

	allowlist, err := loadAllowlist(root, *allowPath)
	if err != nil {
		return 0, err
	}
	// Stale-allowlist detection only makes sense when every package is
	// in view; a partial selection (e.g. the bench job's hot-path check)
	// legitimately leaves entries for unselected packages unmatched.
	complete := len(pkgs) == len(mod.Packages)
	runner := analysis.NewDefaultRunner(mod.Path, root, allowlist, complete)
	// The engine-backed passes reason over the whole module regardless
	// of the selection, so a hot-path subset run sees the same call
	// graph as the CI gate.
	runner.Module = mod.Packages
	diags := runner.Run(pkgs)
	if len(diags) == 0 {
		return 0, nil
	}
	for _, d := range diags {
		if *format == "github" {
			fmt.Fprintln(out, d.GitHub(root))
		} else {
			fmt.Fprintln(out, d.String(root))
		}
	}
	fmt.Fprintf(out, "velociti-vet: %d finding(s)\n", len(diags))
	return 2, nil
}

// loadAllowlist reads the panic allowlist. An explicitly named file
// must exist; the default path is optional so fresh modules start from
// an empty allowlist.
func loadAllowlist(root, path string) (*analysis.Allowlist, error) {
	explicit := path != ""
	if !explicit {
		path = filepath.Join(root, filepath.FromSlash(defaultAllowlist))
	}
	al, err := analysis.ParseAllowlist(path)
	if err != nil {
		if !explicit && errors.Is(err, os.ErrNotExist) {
			return analysis.EmptyAllowlist(), nil
		}
		return nil, verr.Inputf("allowlist: %w", err)
	}
	return al, nil
}

// selectPackages resolves package patterns against the loaded module.
// Supported forms: "./..." (everything), "dir/..." (subtree), and plain
// directory paths, all relative to the current directory.
func selectPackages(mod *analysis.Module, cwd string, patterns []string) ([]*analysis.Package, error) {
	dirOf := func(pkg *analysis.Package) string { return pkg.Dir }
	var out []*analysis.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if pat == "..." {
			recursive, dir = true, "."
		} else if strings.HasSuffix(pat, "/...") {
			recursive, dir = true, strings.TrimSuffix(pat, "/...")
		}
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, filepath.FromSlash(dir))
		}
		abs = filepath.Clean(abs)
		matched := false
		for _, pkg := range mod.Packages {
			d := dirOf(pkg)
			ok := d == abs
			if recursive && !ok {
				rel, err := filepath.Rel(abs, d)
				ok = err == nil && !strings.HasPrefix(rel, "..")
			}
			if !ok || seen[pkg.Path] {
				if ok {
					matched = true
				}
				continue
			}
			seen[pkg.Path] = true
			matched = true
			out = append(out, pkg)
		}
		if !matched {
			return nil, verr.Inputf("pattern %q matches no packages in module %s", pat, mod.Path)
		}
	}
	return out, nil
}
