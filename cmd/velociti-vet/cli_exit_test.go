package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain turns this test binary into the real CLI when the re-exec
// marker is set, so the exit-status tests below observe main()'s true
// exit code, stdout, and stderr.
func TestMain(m *testing.M) {
	if os.Getenv("VELOCITI_CLI_EXIT_TEST") == "1" {
		args := []string{os.Args[0]}
		if raw := os.Getenv("VELOCITI_CLI_EXIT_ARGS"); raw != "" {
			args = append(args, strings.Split(raw, "\x1f")...)
		}
		os.Args = args
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// execMain re-executes the CLI with args in dir ("" = this package's
// directory) and returns exit code, stdout, and stderr.
func execMain(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Dir = dir
	cmd.Env = append(os.Environ(),
		"VELOCITI_CLI_EXIT_TEST=1",
		"VELOCITI_CLI_EXIT_ARGS="+strings.Join(args, "\x1f"))
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec failed: %v", err)
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

// moduleRoot locates the repository root from the test's working
// directory (cmd/velociti-vet).
func moduleRoot(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(cwd))
}

func TestInvalidInputExitStatus(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		substr string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag"},
		{"missing explicit allowlist", []string{"-allowlist", "does-not-exist.txt", "./..."}, "allowlist"},
		{"pattern matches nothing", []string{"./no-such-dir/..."}, "matches no packages"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := execMain(t, moduleRoot(t), tc.args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
			}
			if strings.Contains(stderr, "goroutine ") || strings.Contains(stderr, "panic:") {
				t.Fatalf("stderr contains a stack trace:\n%s", stderr)
			}
			line := strings.TrimSuffix(stderr, "\n")
			if line == "" || strings.Contains(line, "\n") {
				t.Errorf("stderr should be exactly one diagnostic line, got %q", stderr)
			}
			if !strings.HasPrefix(line, "velociti-vet: invalid input:") {
				t.Errorf("stderr = %q, want prefix %q", line, "velociti-vet: invalid input:")
			}
			if !strings.Contains(line, tc.substr) {
				t.Errorf("stderr = %q, want it to mention %q", line, tc.substr)
			}
		})
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	// The whole repository must be contract-clean: this is the same
	// invocation the CI vet-contracts job performs.
	code, stdout, stderr := execMain(t, moduleRoot(t), "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run should print nothing, got:\n%s", stdout)
	}
}

func TestFindingsExitTwo(t *testing.T) {
	// A scratch module with one undocumented panic and a dropped error
	// must exit 2 and print deterministic file:line:col diagnostics.
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "m", "m.go"), `package m

import "os"

func F(p string) {
	if p == "" {
		panic("empty")
	}
	os.Remove(p)
}
`)
	code, stdout, stderr := execMain(t, dir, "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{
		"internal/m/m.go:7:3: [panicguard]",
		"internal/m/m.go:9:2: [errcheck-lite]",
		"velociti-vet: 2 finding(s)",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	// Findings must come out sorted (panicguard line 7 before
	// errcheck line 9) regardless of pass execution order.
	if i, j := strings.Index(stdout, "[panicguard]"), strings.Index(stdout, "[errcheck-lite]"); i > j {
		t.Errorf("diagnostics not sorted by position:\n%s", stdout)
	}
}

// TestOutputFormatsGolden pins both renderings byte-for-byte: the text
// format scripts parse and the GitHub annotation format PR checks
// render inline.
func TestOutputFormatsGolden(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "m", "m.go"), `package m

import "os"

func F(p string) {
	os.Remove(p)
}
`)
	const msg = "error result of os.Remove is dropped; handle it (or assign and check it)"
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "text",
			args: []string{"./..."},
			want: "internal/m/m.go:6:2: [errcheck-lite] " + msg + "\n" +
				"velociti-vet: 1 finding(s)\n",
		},
		{
			name: "github",
			args: []string{"-format", "github", "./..."},
			want: "::error file=internal/m/m.go,line=6,col=2::[errcheck-lite] " + msg + "\n" +
				"velociti-vet: 1 finding(s)\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := execMain(t, dir, tc.args...)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %q)", code, stderr)
			}
			if stdout != tc.want {
				t.Errorf("stdout golden mismatch:\ngot:\n%s\nwant:\n%s", stdout, tc.want)
			}
		})
	}
}

func TestUnknownFormatIsInvalidInput(t *testing.T) {
	code, _, stderr := execMain(t, moduleRoot(t), "-format", "xml", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
	}
	if !strings.Contains(stderr, `unknown -format "xml"`) {
		t.Errorf("stderr = %q, want it to name the bad format", stderr)
	}
}

// TestKeyCoverGateBlocksThroughCLI proves the PR-7 regression shape
// fails the real gate end to end: a Keyer struct with a field its
// CacheKey never reads exits 2 with a keycover finding.
func TestKeyCoverGateBlocksThroughCLI(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "k", "k.go"), `package k

import "strconv"

type BindKey struct {
	Alpha   float64
	Backend string
}

func (k BindKey) CacheKey() string {
	return strconv.FormatFloat(k.Alpha, 'g', -1, 64)
}
`)
	code, stdout, stderr := execMain(t, dir, "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "[keycover] field Backend of BindKey is not read by CacheKey") {
		t.Errorf("stdout missing the keycover finding:\n%s", stdout)
	}
}

func TestBrokenTreeIsInvalidInput(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "b.go"), "package b\n\nfunc F() int { return undefinedName }\n")
	code, _, stderr := execMain(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
	}
	if !strings.Contains(stderr, "velociti-vet: invalid input:") || !strings.Contains(stderr, "type-check") {
		t.Errorf("stderr = %q, want an invalid-input type-check diagnostic", stderr)
	}
}

func writeFile(t *testing.T, path, body string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
