// Command velociti-serve runs the VelociTI evaluation pipelines as a
// long-lived HTTP service (internal/serve): POST /v1/evaluate, /v1/sweep,
// and /v1/explore answer the same questions as the velociti,
// velociti-sweep, and velociti-dse CLIs — with byte-identical bodies —
// while sharing one artifact cache across requests, coalescing identical
// in-flight plans, and applying bounded admission (429 + Retry-After past
// the queue). GET /metrics reports cache, pool, admission, and
// per-endpoint counters; GET /healthz answers liveness.
//
//	velociti-serve -addr 127.0.0.1:8080
//	velociti-serve -addr :0 -max-inflight 4 -max-queue 8 -request-timeout 30s
//
// On SIGTERM/SIGINT the listener closes, in-flight requests drain for up
// to -shutdown-grace, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"velociti/internal/serve"
	"velociti/internal/verr"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		if verr.IsInput(err) {
			fmt.Fprintln(os.Stderr, "velociti-serve: invalid input:", err)
		} else {
			fmt.Fprintln(os.Stderr, "velociti-serve:", err)
		}
		os.Exit(1)
	}
}

// run boots the service and blocks until ctx is cancelled (a signal) or
// the listener fails. Diagnostics — including the "listening on" banner
// that reports the bound address — go to diag, never stdout.
func run(ctx context.Context, args []string, diag io.Writer) error {
	fs := flag.NewFlagSet("velociti-serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		maxInFlight = fs.Int("max-inflight", 0, "concurrent evaluation slots (0 = GOMAXPROCS)")
		maxQueue    = fs.Int("max-queue", 0, "admission queue depth (0 = 2x max-inflight, negative = no queue)")
		reqTimeout  = fs.Duration("request-timeout", 60*time.Second, "per-request evaluation deadline and timeout_ms cap")
		maxBody     = fs.Int64("max-body-bytes", 1<<20, "request body size cap (413 beyond)")
		cacheCap    = fs.Int("cache-capacity", 0, "per-stage artifact cache bound (0 = default, negative = unbounded)")
		workers     = fs.Int("workers", 0, "default trial parallelism per evaluation (0 = GOMAXPROCS)")
		retryAfter  = fs.Duration("retry-after", time.Second, "Retry-After hint attached to 429 responses")
		grace       = fs.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on SIGTERM/SIGINT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return verr.Inputf("unexpected argument %q", fs.Arg(0))
	}

	s := serve.New(serve.Options{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
		MaxBodyBytes:   *maxBody,
		CacheCapacity:  *cacheCap,
		Workers:        *workers,
		RetryAfter:     *retryAfter,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Fprintf(diag, "velociti-serve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve only returns on listener failure here; ErrServerClosed
		// can't happen before Shutdown is called.
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests for up
	// to the grace window, and only then cancel whatever is still running
	// (Close before Shutdown would turn the drain into an abort).
	fmt.Fprintf(diag, "velociti-serve: shutting down, draining for up to %s\n", *grace)
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(sctx)
	s.Close()
	if shutdownErr != nil {
		if errors.Is(shutdownErr, context.DeadlineExceeded) {
			fmt.Fprintln(diag, "velociti-serve: drain window elapsed, aborting remaining requests")
		} else {
			return shutdownErr
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(diag, "velociti-serve: stopped")
	return nil
}
