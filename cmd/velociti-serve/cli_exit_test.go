package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain turns this test binary into the real CLI when the re-exec
// marker is set, so the exit-status tests below observe main()'s true
// exit code and stderr.
func TestMain(m *testing.M) {
	if os.Getenv("VELOCITI_CLI_EXIT_TEST") == "1" {
		args := []string{os.Args[0]}
		if raw := os.Getenv("VELOCITI_CLI_EXIT_ARGS"); raw != "" {
			args = append(args, strings.Split(raw, "\x1f")...)
		}
		os.Args = args
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func execMain(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"VELOCITI_CLI_EXIT_TEST=1",
		"VELOCITI_CLI_EXIT_ARGS="+strings.Join(args, "\x1f"))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = io.Discard
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec failed: %v", err)
		}
		code = ee.ExitCode()
	}
	return code, stderr.String()
}

func checkDiagnostic(t *testing.T, code int, stderr, prefix, substr string) {
	t.Helper()
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
	}
	if strings.Contains(stderr, "goroutine ") || strings.Contains(stderr, "panic:") {
		t.Fatalf("stderr contains a stack trace:\n%s", stderr)
	}
	line := strings.TrimSuffix(stderr, "\n")
	if line == "" || strings.Contains(line, "\n") {
		t.Errorf("stderr should be exactly one diagnostic line, got %q", stderr)
	}
	if !strings.HasPrefix(line, prefix) {
		t.Errorf("stderr = %q, want prefix %q", line, prefix)
	}
	if !strings.Contains(line, substr) {
		t.Errorf("stderr = %q, want it to mention %q", line, substr)
	}
}

func TestMalformedInputExitStatus(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		substr string
	}{
		{"positional argument", []string{"leftover"}, "unexpected argument"},
		{"unresolvable address", []string{"-addr", "256.256.256.256:1"}, "listen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := execMain(t, tc.args...)
			checkDiagnostic(t, code, stderr, "velociti-serve:", tc.substr)
		})
	}
}
