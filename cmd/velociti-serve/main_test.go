package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read diagnostics while run writes them from
// another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`velociti-serve: listening on (\S+)`)

// waitForAddr polls the diagnostics for the listen banner and returns the
// bound address.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no listen banner in diagnostics: %q", out.String())
	return ""
}

// TestServeAndGracefulShutdown boots the service on a free port, checks
// liveness and one real evaluation, then cancels the context (the signal
// path) and expects a clean nil return.
func TestServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-shutdown-grace", "5s"}, &out)
	}()
	base := "http://" + waitForAddr(t, &out)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q, want 200 %q", resp.StatusCode, body, "ok\n")
	}

	resp, err = http.Post(base+"/v1/evaluate", "application/json",
		strings.NewReader(`{"workload": {"name": "smoke", "qubits": 8, "two_qubit_gates": 4}, "runs": 2}`))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d: %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
	if !strings.Contains(out.String(), "velociti-serve: stopped") {
		t.Errorf("diagnostics missing stop line: %q", out.String())
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	err := run(context.Background(), []string{"extra"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unexpected argument") {
		t.Fatalf("err = %v, want unexpected-argument input error", err)
	}
}

func TestRunBadListenAddress(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Fatalf("err = %v, want listen error", err)
	}
}
