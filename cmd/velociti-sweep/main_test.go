package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func sweep(t *testing.T, args ...string) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("no data rows:\n%s", buf.String())
	}
	return lines
}

func TestAppSweepShape(t *testing.T) {
	lines := sweep(t, "-app", "BV", "-chain-lengths", "8,16,32", "-alphas", "2.0,1.0", "-runs", "3")
	if len(lines) != 1+3*2 {
		t.Fatalf("rows = %d, want 6 + header", len(lines)-1)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "workload" || header[len(header)-1] != "weak_gates" {
		t.Fatalf("header = %v", header)
	}
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != len(header) {
			t.Fatalf("row width mismatch: %v", line)
		}
		if cells[0] != "BV" {
			t.Fatalf("workload column = %q", cells[0])
		}
	}
}

func TestQVSweepRange(t *testing.T) {
	lines := sweep(t, "-qv", "-qubit-range", "8:48:20", "-runs", "2")
	// N = 8, 28, 48.
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines)-1)
	}
	if !strings.HasPrefix(lines[1], "qv8,8,4,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestRatioSweep(t *testing.T) {
	lines := sweep(t, "-ratio", "2", "-qubit-range", "8:28:20", "-runs", "2")
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		n, _ := strconv.Atoi(cells[1])
		p, _ := strconv.Atoi(cells[2])
		if p != 2*n {
			t.Fatalf("ratio broken: %v", line)
		}
	}
}

func TestExplicitSweepWithPlacers(t *testing.T) {
	lines := sweep(t, "-qubits", "32", "-two-qubit-gates", "100",
		"-placers", "random,load-balanced", "-runs", "3")
	if len(lines) != 3 {
		t.Fatalf("rows = %d", len(lines)-1)
	}
	var randPar, lbPar float64
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		v, _ := strconv.ParseFloat(cells[9], 64)
		switch cells[7] {
		case "random":
			randPar = v
		case "load-balanced":
			lbPar = v
		}
	}
	if lbPar <= 0 || randPar <= 0 || lbPar >= randPar {
		t.Fatalf("load-balanced %v should beat random %v", lbPar, randPar)
	}
}

func TestAlphaColumnMonotone(t *testing.T) {
	lines := sweep(t, "-qubits", "64", "-two-qubit-gates", "128",
		"-chain-lengths", "16", "-alphas", "2.0,1.5,1.0", "-runs", "5")
	var prev float64 = -1
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		par, _ := strconv.ParseFloat(cells[9], 64)
		if prev >= 0 && par > prev {
			t.Fatalf("parallel time should fall as α falls: %v then %v", prev, par)
		}
		prev = par
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-app", "Nope"},
		{"-qv", "-qubit-range", "8:128"},
		{"-qv", "-qubit-range", "8:128:0"},
		{"-qv", "-qubit-range", "a:b:c"},
		{"-qubits", "8", "-chain-lengths", "x"},
		{"-qubits", "8", "-alphas", "zz"},
		{"-qubits", "8", "-placers", "zz"},
		{"-qubits", "8", "-topology", "hex"},
		{"-qubits", "-4"},
	}
	for i, args := range cases {
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestListParsers(t *testing.T) {
	ints, err := parseInts(" 8, 16 ,32 ")
	if err != nil || len(ints) != 3 || ints[2] != 32 {
		t.Fatalf("parseInts: %v %v", ints, err)
	}
	floats, err := parseFloats("2.0,1.0")
	if err != nil || floats[1] != 1.0 {
		t.Fatalf("parseFloats: %v %v", floats, err)
	}
	if _, err := parseInts(","); err == nil {
		t.Fatalf("empty list should error")
	}
}

func TestWorkersFlagMatchesSerial(t *testing.T) {
	serial := sweep(t, "-app", "BV", "-chain-lengths", "8,16", "-runs", "6")
	concurrent := sweep(t, "-app", "BV", "-chain-lengths", "8,16", "-runs", "6", "-workers", "4")
	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Fatalf("row %d differs between serial and concurrent sweeps:\n%s\n%s", i, serial[i], concurrent[i])
		}
	}
}

func TestProfilingFlagsKeepStdoutByteIdentical(t *testing.T) {
	base := []string{"-app", "BV", "-chain-lengths", "8,16", "-runs", "2"}
	var plain bytes.Buffer
	if err := run(context.Background(), base, &plain); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var profiled bytes.Buffer
	args := append([]string{"-cpuprofile", cpu, "-memprofile", mem}, base...)
	if err := run(context.Background(), args, &profiled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), profiled.Bytes()) {
		t.Fatalf("stdout changed under profiling:\n--- plain ---\n%s--- profiled ---\n%s", plain.String(), profiled.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestBackendFlagShuttle(t *testing.T) {
	base := []string{"-qubits", "32", "-two-qubit-gates", "100", "-chain-lengths", "8,16", "-runs", "3"}
	weak := sweep(t, base...)
	shut := sweep(t, append([]string{"-backend", "shuttle"}, base...)...)
	if len(weak) != len(shut) {
		t.Fatalf("row counts differ: %d vs %d", len(weak), len(shut))
	}
	if weak[0] != shut[0] {
		t.Fatalf("headers differ:\n%s\n%s", weak[0], shut[0])
	}
	same := true
	for i := 1; i < len(weak); i++ {
		if weak[i] != shut[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("shuttle backend produced identical rows to weak link")
	}
	// Explicit weaklink is the default spelled out.
	explicit := sweep(t, append([]string{"-backend", "weaklink"}, base...)...)
	for i := range weak {
		if weak[i] != explicit[i] {
			t.Fatalf("row %d differs between default and explicit weaklink", i)
		}
	}
	var buf bytes.Buffer
	if err := run(context.Background(), append([]string{"-backend", "bogus"}, base...), &buf); err == nil {
		t.Fatalf("unknown backend should error")
	}
}
