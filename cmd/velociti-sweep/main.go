// Command velociti-sweep runs design-space sweeps over the VelociTI model
// parameters and emits one CSV row per configuration — the batch-script
// workflow the paper's §V-A describes for "easy design space exploration
// and scalability experiments".
//
// The workload is either a Table II application (-app), a quantum-volume
// sweep (-qv), a fixed-ratio sweep (-ratio), or explicit counts
// (-qubits/-two-qubit-gates). Swept knobs take comma-separated values:
//
//	velociti-sweep -app QAOA -chain-lengths 8,16,24,32
//	velociti-sweep -qv -qubit-range 8:128:20 -alphas 2.0,1.6,1.2,1.0
//	velociti-sweep -ratio 2 -qubit-range 8:128:20 -chain-lengths 32,48,64
//	velociti-sweep -qubits 64 -two-qubit-gates 560 -placers random,load-balanced
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"velociti/internal/cache"
	"velociti/internal/core"
	"velociti/internal/prof"
	"velociti/internal/shuttle"
	"velociti/internal/ti"
	"velociti/internal/verr"
	"velociti/internal/workload"
)

func main() {
	start := time.Now()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if verr.IsInput(err) {
			fmt.Fprintln(os.Stderr, "velociti-sweep: invalid input:", err)
		} else {
			fmt.Fprintln(os.Stderr, "velociti-sweep:", err)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "velociti-sweep: done in %s\n", time.Since(start).Round(time.Millisecond))
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("velociti-sweep", flag.ContinueOnError)
	var (
		profile    prof.Flags
		app        = fs.String("app", "", "Table II application workload")
		qv         = fs.Bool("qv", false, "quantum-volume workload (N qubits, N/2 2-qubit gates)")
		ratio      = fs.Float64("ratio", 0, "fixed-ratio workload (N qubits, ratio*N 2-qubit gates)")
		qubits     = fs.Int("qubits", 0, "explicit workload qubits")
		oneQ       = fs.Int("one-qubit-gates", 0, "explicit workload 1-qubit gates")
		twoQ       = fs.Int("two-qubit-gates", 0, "explicit workload 2-qubit gates")
		qubitRange = fs.String("qubit-range", "", "qubit sweep as from:to:step (with -qv or -ratio)")
		chainLens  = fs.String("chain-lengths", "16", "comma-separated chain lengths")
		alphas     = fs.String("alphas", "2.0", "comma-separated weak-link penalties")
		placers    = fs.String("placers", "random", "comma-separated gate placers (random, weak-avoiding, load-balanced, edge-constrained, annealed)")
		topology   = fs.String("topology", "ring", "weak-link topology: ring, line, or tape")
		backendF   = fs.String("backend", "weaklink", "timing backend: weaklink or shuttle (explicit ion transport)")
		runs       = fs.Int("runs", core.DefaultRuns, "randomized trials per configuration")
		seed       = fs.Int64("seed", 1, "master random seed")
		workers    = fs.Int("workers", 1, "trials to run concurrently per configuration")
		cacheStats = fs.Bool("cache-stats", false, "report stage-cache counters and per-phase wall clock on stderr")
		streamF    = fs.Bool("stream", false, "memory-bounded streaming evaluation: identical CSV bytes with peak memory independent of the gate counts")
	)
	profile.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Profiles go to their own files, so the CSV on stdout is byte-identical
	// with or without them.
	if err := profile.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := profile.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()

	// Workload resolution and grid evaluation are shared with the sweep
	// service (internal/serve): both front ends lower onto
	// workload.Selector and core.RunGrid, which is what makes the
	// service's CLI-equivalence guarantee hold by construction.
	sel := workload.Selector{
		App: *app, QV: *qv, Ratio: *ratio,
		Qubits: *qubits, OneQubitGates: *oneQ, TwoQubitGates: *twoQ,
		QubitRange: *qubitRange,
	}
	specs, err := sel.Specs()
	if err != nil {
		return err
	}
	lengths, err := parseInts(*chainLens)
	if err != nil {
		return verr.Inputf("-chain-lengths: %w", err)
	}
	alphaVals, err := parseFloats(*alphas)
	if err != nil {
		return verr.Inputf("-alphas: %w", err)
	}
	topo, err := ti.ParseTopology(*topology)
	if err != nil {
		return err
	}
	backend, err := shuttle.ByName(*backendF, shuttle.Default())
	if err != nil {
		return err
	}

	// One artifact store across the whole grid: cells that differ only in α
	// (or any other Time-stage knob) share placement, synthesis, and binding
	// work. Content-keyed artifacts keep the CSV byte-identical either way.
	pipeline := core.NewPipeline()
	evalStart := time.Now()
	grid := core.Grid{
		Specs:        specs,
		ChainLengths: lengths,
		Alphas:       alphaVals,
		Placers:      splitList(*placers),
		Topology:     topo,
		Runs:         *runs,
		Seed:         *seed,
		Workers:      *workers,
		Pipeline:     pipeline,
		Backend:      backend,
		Stream:       *streamF,
	}
	res, err := core.RunGrid(ctx, grid)
	if err != nil {
		return err
	}

	renderStart := time.Now()
	res.EachSkip(func(c core.GridCell, err error) {
		fmt.Fprintf(os.Stderr, "velociti-sweep: skipping %s L=%d α=%g %s: %v\n",
			c.Spec.Name, c.ChainLength, c.Alpha, c.Placer, err)
	})
	if err := res.WriteCSV(out); err != nil {
		return err
	}
	if err := res.Err(); err != nil {
		return err
	}
	if *cacheStats {
		st := pipeline.Stats()
		fmt.Fprintf(os.Stderr, "velociti-sweep: %d cells evaluated in %s, rendered in %s\n",
			len(res.Cells)-res.Failed(), renderStart.Sub(evalStart).Round(time.Millisecond), time.Since(renderStart).Round(time.Millisecond))
		for _, stage := range []struct {
			name string
			s    cache.Stats
		}{{"place", st.Place}, {"synth", st.Synthesize}, {"search", st.Search}, {"bind", st.Bind}, {"stream", st.Stream}} {
			fmt.Fprintf(os.Stderr, "velociti-sweep: cache %-5s %d hit / %d miss / %d evict / %d resident\n",
				stage.name, stage.s.Hits, stage.s.Misses, stage.s.Evictions, stage.s.Entries)
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
