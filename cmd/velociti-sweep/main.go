// Command velociti-sweep runs design-space sweeps over the VelociTI model
// parameters and emits one CSV row per configuration — the batch-script
// workflow the paper's §V-A describes for "easy design space exploration
// and scalability experiments".
//
// The workload is either a Table II application (-app), a quantum-volume
// sweep (-qv), a fixed-ratio sweep (-ratio), or explicit counts
// (-qubits/-two-qubit-gates). Swept knobs take comma-separated values:
//
//	velociti-sweep -app QAOA -chain-lengths 8,16,24,32
//	velociti-sweep -qv -qubit-range 8:128:20 -alphas 2.0,1.6,1.2,1.0
//	velociti-sweep -ratio 2 -qubit-range 8:128:20 -chain-lengths 32,48,64
//	velociti-sweep -qubits 64 -two-qubit-gates 560 -placers random,load-balanced
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"velociti/internal/apps"
	"velociti/internal/cache"
	"velociti/internal/circuit"
	"velociti/internal/core"
	"velociti/internal/perf"
	"velociti/internal/pool"
	"velociti/internal/prof"
	"velociti/internal/schedule"
	"velociti/internal/ti"
	"velociti/internal/verr"
	"velociti/internal/workload"
)

func main() {
	start := time.Now()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if verr.IsInput(err) {
			fmt.Fprintln(os.Stderr, "velociti-sweep: invalid input:", err)
		} else {
			fmt.Fprintln(os.Stderr, "velociti-sweep:", err)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "velociti-sweep: done in %s\n", time.Since(start).Round(time.Millisecond))
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("velociti-sweep", flag.ContinueOnError)
	var (
		profile    prof.Flags
		app        = fs.String("app", "", "Table II application workload")
		qv         = fs.Bool("qv", false, "quantum-volume workload (N qubits, N/2 2-qubit gates)")
		ratio      = fs.Float64("ratio", 0, "fixed-ratio workload (N qubits, ratio*N 2-qubit gates)")
		qubits     = fs.Int("qubits", 0, "explicit workload qubits")
		oneQ       = fs.Int("one-qubit-gates", 0, "explicit workload 1-qubit gates")
		twoQ       = fs.Int("two-qubit-gates", 0, "explicit workload 2-qubit gates")
		qubitRange = fs.String("qubit-range", "", "qubit sweep as from:to:step (with -qv or -ratio)")
		chainLens  = fs.String("chain-lengths", "16", "comma-separated chain lengths")
		alphas     = fs.String("alphas", "2.0", "comma-separated weak-link penalties")
		placers    = fs.String("placers", "random", "comma-separated gate placers")
		topology   = fs.String("topology", "ring", "weak-link topology: ring or line")
		runs       = fs.Int("runs", core.DefaultRuns, "randomized trials per configuration")
		seed       = fs.Int64("seed", 1, "master random seed")
		workers    = fs.Int("workers", 1, "trials to run concurrently per configuration")
		cacheStats = fs.Bool("cache-stats", false, "report stage-cache counters and per-phase wall clock on stderr")
	)
	profile.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Profiles go to their own files, so the CSV on stdout is byte-identical
	// with or without them.
	if err := profile.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := profile.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()

	specs, err := buildSpecs(*app, *qv, *ratio, *qubits, *oneQ, *twoQ, *qubitRange)
	if err != nil {
		return err
	}
	lengths, err := parseInts(*chainLens)
	if err != nil {
		return verr.Inputf("-chain-lengths: %w", err)
	}
	alphaVals, err := parseFloats(*alphas)
	if err != nil {
		return verr.Inputf("-alphas: %w", err)
	}
	placerNames := splitList(*placers)
	topo, err := ti.ParseTopology(*topology)
	if err != nil {
		return err
	}

	// Flatten the grid into cells so one bad configuration degrades into
	// one failed data point (a stderr diagnostic and a skipped CSV row)
	// instead of aborting the whole sweep.
	type cell struct {
		spec       circuit.Spec
		chainLen   int
		alpha      float64
		placerName string
	}
	var cells []cell
	for _, spec := range specs {
		for _, L := range lengths {
			for _, alpha := range alphaVals {
				for _, placerName := range placerNames {
					cells = append(cells, cell{spec, L, alpha, placerName})
				}
			}
		}
	}
	if len(cells) == 0 {
		return verr.Inputf("empty sweep grid")
	}

	// One artifact store across the whole grid: cells that differ only in α
	// (or any other Time-stage knob) share placement, synthesis, and binding
	// work. Content-keyed artifacts keep the CSV byte-identical either way.
	pipeline := core.NewPipeline()
	evalStart := time.Now()
	// Trials parallelize inside each cell (cfg.Workers); cells run one at a
	// time so CSV row order — and every trial's derived seed — matches the
	// serial sweep exactly. RunAll gives per-cell error isolation either way.
	reports := make([]*core.Report, len(cells))
	errs := pool.RunAll(ctx, 1, len(cells), func(i int) error {
		c := cells[i]
		lat := perf.DefaultLatencies()
		lat.WeakPenalty = c.alpha
		placer, err := schedule.ByName(c.placerName, lat)
		if err != nil {
			return err
		}
		cfg := core.Config{
			Spec:        c.spec,
			ChainLength: c.chainLen,
			Topology:    topo,
			Latencies:   lat,
			Placer:      placer,
			Runs:        *runs,
			Seed:        *seed,
			Workers:     *workers,
			Pipeline:    pipeline,
		}
		rep, err := core.RunContext(ctx, cfg)
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})

	renderStart := time.Now()
	fmt.Fprintln(out, "workload,qubits,two_qubit_gates,chain_length,chains,weak_links,alpha,placer,serial_us,parallel_us,parallel_min_us,parallel_max_us,speedup,weak_gates")
	failed := 0
	for i, c := range cells {
		if errs != nil && errs[i] != nil {
			failed++
			fmt.Fprintf(os.Stderr, "velociti-sweep: skipping %s L=%d α=%g %s: %v\n",
				c.spec.Name, c.chainLen, c.alpha, c.placerName, errs[i])
			continue
		}
		rep := reports[i]
		fmt.Fprintf(out, "%s,%d,%d,%d,%d,%d,%g,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f\n",
			c.spec.Name, c.spec.Qubits, c.spec.TwoQubitGates,
			c.chainLen, rep.Device.NumChains, rep.Device.MaxWeakLinks, c.alpha, c.placerName,
			rep.Serial.Mean, rep.Parallel.Mean, rep.Parallel.Min, rep.Parallel.Max,
			rep.MeanSpeedup(), rep.WeakGates.Mean)
	}
	if failed == len(cells) {
		return fmt.Errorf("all %d sweep configurations failed; first: %w", failed, errs[0])
	}
	if *cacheStats {
		st := pipeline.Stats()
		fmt.Fprintf(os.Stderr, "velociti-sweep: %d cells evaluated in %s, rendered in %s\n",
			len(cells)-failed, renderStart.Sub(evalStart).Round(time.Millisecond), time.Since(renderStart).Round(time.Millisecond))
		for _, stage := range []struct {
			name string
			s    cache.Stats
		}{{"place", st.Place}, {"synth", st.Synthesize}, {"bind", st.Bind}} {
			fmt.Fprintf(os.Stderr, "velociti-sweep: cache %-5s %d hit / %d miss / %d evict / %d resident\n",
				stage.name, stage.s.Hits, stage.s.Misses, stage.s.Evictions, stage.s.Entries)
		}
	}
	return nil
}

func buildSpecs(app string, qv bool, ratio float64, qubits, oneQ, twoQ int, qubitRange string) ([]circuit.Spec, error) {
	switch {
	case app != "":
		a, err := apps.ByName(app)
		if err != nil {
			return nil, err
		}
		return []circuit.Spec{a.Spec}, nil
	case qv || ratio > 0:
		from, to, step := 8, 128, 20
		if qubitRange != "" {
			parts := strings.Split(qubitRange, ":")
			if len(parts) != 3 {
				return nil, verr.Inputf("-qubit-range wants from:to:step, got %q", qubitRange)
			}
			vals := make([]int, 3)
			for i, p := range parts {
				v, err := strconv.Atoi(p)
				if err != nil {
					return nil, verr.Inputf("-qubit-range: %w", err)
				}
				vals[i] = v
			}
			from, to, step = vals[0], vals[1], vals[2]
			if step <= 0 {
				return nil, verr.Inputf("-qubit-range step must be positive")
			}
		}
		if qv {
			return workload.QVSweep(from, to, step)
		}
		return workload.RatioSweep(from, to, step, ratio)
	case qubits > 0:
		spec := circuit.Spec{Name: "sweep", Qubits: qubits, OneQubitGates: oneQ, TwoQubitGates: twoQ}
		return []circuit.Spec{spec}, spec.Validate()
	default:
		return nil, verr.Inputf("no workload: pass -app, -qv, -ratio, or -qubits (see -h)")
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
