package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReproSubset(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-runs", "3", "-only", "table2,table3,fig6"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "Table III", "Figure 6", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "Figure 7") {
		t.Errorf("unselected experiment ran")
	}
}

func TestReproCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-runs", "2", "-only", "fig7", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 7 { // header + 6 apps
		t.Fatalf("fig7.csv rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "app,parallel_us_L8") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestReproAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-runs", "2", "-only", "ablations"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scheduling policy", "placement policy", "topology"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

// TestReproAblationOrderingIsStable pins the fix for the map-literal
// range that velociti-vet's determinism pass caught: the three named
// ablations must appear in declaration order on every run, not in map
// iteration order.
func TestReproAblationOrderingIsStable(t *testing.T) {
	var first string
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-runs", "1", "-only", "ablations"}, &buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		iSched := strings.Index(out, "scheduling policy")
		iPlace := strings.Index(out, "placement policy")
		iTopo := strings.Index(out, "topology")
		if iSched < 0 || iPlace < 0 || iTopo < 0 {
			t.Fatalf("run %d: missing ablation tables:\n%s", i, out)
		}
		if !(iSched < iPlace && iPlace < iTopo) {
			t.Fatalf("run %d: ablations out of declaration order (schedulers@%d, placement@%d, topology@%d)",
				i, iSched, iPlace, iTopo)
		}
		if i == 0 {
			first = out
		} else if out != first {
			t.Fatalf("run %d: ablation output differs between identical invocations", i)
		}
	}
}

func TestReproUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-only", "fig42"}, &buf); err == nil {
		t.Fatalf("unknown experiment should error")
	}
}

func TestReproScalingStudies(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-runs", "2", "-only", "fig8,fig9"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "quantum volume") || !strings.Contains(out, "2:1 ratio") {
		t.Errorf("scaling studies missing:\n%s", out)
	}
}

func TestReproSVGOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-runs", "2", "-only", "fig6,fig8", "-svg", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig6.svg", "fig8a.svg", "fig8b.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Fatalf("%s is not SVG", name)
		}
	}
}

func TestReproMarkdownReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-runs", "2", "-only", "table2,fig6", "-md", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{"# VelociTI reproduction report", "Table II", "Figure 6", "```"} {
		if !strings.Contains(report, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

func TestProfilingFlagsKeepStdoutByteIdentical(t *testing.T) {
	base := []string{"-only", "table2,ext-capacity", "-runs", "2"}
	var plain bytes.Buffer
	if err := run(context.Background(), base, &plain); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var profiled bytes.Buffer
	args := append([]string{"-cpuprofile", cpu, "-memprofile", mem}, base...)
	if err := run(context.Background(), args, &profiled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), profiled.Bytes()) {
		t.Fatalf("stdout changed under profiling:\n--- plain ---\n%s--- profiled ---\n%s", plain.String(), profiled.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}
