// Command velociti-repro regenerates every table and figure of the
// VelociTI paper's evaluation: Tables II–III, the tool-runtime study
// (Figure 5), Case Study 1 (Figure 6), the chain-length sweep (Figure 7),
// the quantum-volume and 2:1-ratio scaling studies (Figures 8–9), and the
// extension-policy ablations.
//
//	velociti-repro                 # everything, paper settings (35 runs)
//	velociti-repro -only fig6,fig7 # a subset
//	velociti-repro -runs 10        # faster, noisier
//	velociti-repro -csv out/       # also write one CSV per experiment
//	velociti-repro -cpuprofile cpu.pprof -memprofile mem.pprof  # pprof files
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"velociti/internal/apps"
	"velociti/internal/cache"
	"velociti/internal/core"
	"velociti/internal/expt"
	"velociti/internal/perf"
	"velociti/internal/prof"
	"velociti/internal/shuttle"
)

// experiment names in execution order.
var order = []string{"table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "ext-fidelity", "ext-capacity", "ablations"}

func main() {
	start := time.Now()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "velociti-repro:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "velociti-repro: done in %s\n", time.Since(start).Round(time.Millisecond))
}

// statsDelta renders the change in one stage's cache counters since the
// previous experiment finished.
func statsDelta(cur, prev cache.Stats) string {
	return fmt.Sprintf("%d hit/%d miss/%d evict", cur.Hits-prev.Hits, cur.Misses-prev.Misses, cur.Evictions-prev.Evictions)
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("velociti-repro", flag.ContinueOnError)
	var (
		profile    prof.Flags
		runs       = fs.Int("runs", core.DefaultRuns, "randomized trials per data point")
		seed       = fs.Int64("seed", 1, "master random seed")
		backendF   = fs.String("backend", "weaklink", "timing backend: weaklink (the paper's) or shuttle (explicit ion transport)")
		only       = fs.String("only", "", "comma-separated subset of: "+strings.Join(order, ","))
		csvDir     = fs.String("csv", "", "directory to write per-experiment CSV files into")
		workers    = fs.Int("workers", 1, "concurrent trials per data point")
		svgDir     = fs.String("svg", "", "directory to write per-figure SVG charts into")
		mdPath     = fs.String("md", "", "write a Markdown reproduction report to this file")
		cacheStats = fs.Bool("cache-stats", false, "report per-stage artifact-cache counters per experiment on stderr")
	)
	profile.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Profiles go to their own files, so the tables on stdout are
	// byte-identical with or without them.
	if err := profile.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := profile.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()
	selected := map[string]bool{}
	if *only == "" {
		for _, name := range order {
			selected[name] = true
		}
	} else {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, known := range order {
				if name == known {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q (want one of %s)", name, strings.Join(order, ", "))
			}
			selected[name] = true
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
	}
	// One shared artifact store across every selected experiment: cells that
	// agree on workload, device, policies, and trial seed reuse each other's
	// layouts, circuits, and bindings. Content keying guarantees the tables
	// and figures are byte-identical with or without it.
	pipeline := core.NewPipeline()
	backend, err := shuttle.ByName(*backendF, shuttle.Default())
	if err != nil {
		return err
	}
	opt := expt.Options{Runs: *runs, Seed: *seed, Workers: *workers, Pipeline: pipeline, Backend: backend}
	var md strings.Builder
	if *mdPath != "" {
		fmt.Fprintf(&md, "# VelociTI reproduction report\n\n%d randomized trials per data point, master seed %d.\n", *runs, *seed)
	}
	emit := func(body string) {
		fmt.Fprintln(out, body)
		if *mdPath != "" {
			fmt.Fprintf(&md, "\n```\n%s```\n", body)
		}
	}
	writeSVG := func(name string, render func() (string, error)) error {
		if *svgDir == "" {
			return nil
		}
		body, err := render()
		if err != nil {
			return err
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "(svg written to %s)\n", path)
		return nil
	}
	writeCSV := func(name, data string) error {
		if *csvDir == "" {
			return nil
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "(csv written to %s)\n", path)
		return nil
	}
	// clock reports per-experiment wall-clock time on stderr so sweep cost
	// is visible without polluting the captured stdout tables; with
	// -cache-stats it also reports what the artifact store did for the
	// experiment (per-stage hit/miss/eviction deltas).
	lap := time.Now()
	var prev core.StageStats
	clock := func(name string) {
		if *cacheStats {
			cur := pipeline.Stats()
			fmt.Fprintf(os.Stderr, "velociti-repro: %s in %s [place %s | synth %s | bind %s]\n",
				name, time.Since(lap).Round(time.Millisecond),
				statsDelta(cur.Place, prev.Place),
				statsDelta(cur.Synthesize, prev.Synthesize),
				statsDelta(cur.Bind, prev.Bind))
			prev = cur
		} else {
			fmt.Fprintf(os.Stderr, "velociti-repro: %s in %s\n", name, time.Since(lap).Round(time.Millisecond))
		}
		lap = time.Now()
	}

	if selected["table1"] {
		t1, err := expt.TableIContext(ctx, opt, apps.PaperSpecs()[3], 16) // QFT, the paper's worked example
		if err != nil {
			return err
		}
		emit(t1)
		clock("table1")
	}
	if selected["table2"] {
		emit(expt.TableII())
		clock("table2")
	}
	if selected["table3"] {
		emit(expt.TableIII(perf.DefaultLatencies()))
		clock("table3")
	}
	if selected["fig5"] {
		res, err := expt.Fig5Context(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
		if err := writeCSV("fig5", res.CSV()); err != nil {
			return err
		}
		if err := writeSVG("fig5", res.SVG); err != nil {
			return err
		}
		clock("fig5")
	}
	if selected["fig6"] {
		res, err := expt.Fig6Context(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
		if err := writeCSV("fig6", res.CSV()); err != nil {
			return err
		}
		if err := writeSVG("fig6", res.SVG); err != nil {
			return err
		}
		clock("fig6")
	}
	if selected["fig7"] {
		res, err := expt.Fig7Context(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
		if err := writeCSV("fig7", res.CSV()); err != nil {
			return err
		}
		if err := writeSVG("fig7", res.SVG); err != nil {
			return err
		}
		clock("fig7")
	}
	if selected["fig8"] {
		res, err := expt.Fig8Context(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
		if err := writeCSV("fig8", res.CSV()); err != nil {
			return err
		}
		if err := writeSVG("fig8a", res.SVGChain); err != nil {
			return err
		}
		if err := writeSVG("fig8b", res.SVGAlpha); err != nil {
			return err
		}
		clock("fig8")
	}
	if selected["fig9"] {
		res, err := expt.Fig9Context(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
		if err := writeCSV("fig9", res.CSV()); err != nil {
			return err
		}
		if err := writeSVG("fig9a", res.SVGChain); err != nil {
			return err
		}
		if err := writeSVG("fig9b", res.SVGAlpha); err != nil {
			return err
		}
		clock("fig9")
	}
	if selected["ext-fidelity"] {
		res, err := expt.ExtFidelityContext(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
		if err := writeCSV("ext-fidelity", res.CSV()); err != nil {
			return err
		}
		clock("ext-fidelity")
	}
	if selected["ext-capacity"] {
		res, err := expt.ExtControlCapacityContext(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
		if err := writeCSV("ext-capacity", res.CSV()); err != nil {
			return err
		}
		clock("ext-capacity")
	}
	if selected["ablations"] {
		comm, err := expt.AblationCommContext(ctx, opt)
		if err != nil {
			return err
		}
		emit(comm.Table())
		if err := writeCSV("ablation-comm", comm.CSV()); err != nil {
			return err
		}
		// A named slice, not a map: map iteration order would shuffle the
		// ablation tables between runs (velociti-vet's determinism pass
		// rejects ranging over a map literal for exactly this reason).
		for _, ab := range []struct {
			name string
			f    func(context.Context, expt.Options) (*expt.AblationResult, error)
		}{
			{"ablation-schedulers", expt.AblationSchedulersContext},
			{"ablation-placement", expt.AblationPlacementContext},
			{"ablation-annealed", expt.AblationAnnealedPlacementContext},
			{"ablation-topology", expt.AblationTopologyContext},
		} {
			res, err := ab.f(ctx, opt)
			if err != nil {
				return err
			}
			emit(res.Table())
			if err := writeCSV(ab.name, res.CSV()); err != nil {
				return err
			}
		}
		clock("ablations")
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote markdown report to %s\n", *mdPath)
	}
	return nil
}
