package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeQASM(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.qasm")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

const bell = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"

func TestStats(t *testing.T) {
	path := writeQASM(t, bell)
	out := runTool(t, "stats", "-in", path)
	for _, want := range []string{"qubits:       2", "depth:        2", "cx×1", "h×1"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	qasmPath := writeQASM(t, bell)
	jsonPath := filepath.Join(t.TempDir(), "c.json")
	runTool(t, "convert", "-in", qasmPath, "-out", jsonPath)
	backPath := filepath.Join(t.TempDir(), "back.qasm")
	out := runTool(t, "convert", "-in", jsonPath, "-out", backPath)
	if !strings.Contains(out, "2 gates") {
		t.Fatalf("convert output:\n%s", out)
	}
	data, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "cx q[0],q[1];") {
		t.Fatalf("round-tripped qasm wrong:\n%s", data)
	}
}

func TestOptimize(t *testing.T) {
	path := writeQASM(t, "OPENQASM 2.0;\nqreg q[1];\nh q[0];\nh q[0];\nx q[0];\n")
	outPath := filepath.Join(t.TempDir(), "opt.qasm")
	out := runTool(t, "optimize", "-in", path, "-out", outPath)
	if !strings.Contains(out, "3 gates → 1 gates") {
		t.Fatalf("optimize output:\n%s", out)
	}
	data, _ := os.ReadFile(outPath)
	if !strings.Contains(string(data), "x q[0];") {
		t.Fatalf("optimized circuit wrong:\n%s", data)
	}
}

func TestRoute(t *testing.T) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\nqreg q[8];\n")
	for i := 0; i < 10; i++ {
		b.WriteString("cx q[0],q[4];\n")
	}
	path := writeQASM(t, b.String())
	out := runTool(t, "route", "-in", path, "-chain-length", "4")
	if !strings.Contains(out, "1 migrations") {
		t.Fatalf("route output:\n%s", out)
	}
}

func TestSimulate(t *testing.T) {
	path := writeQASM(t, bell)
	out := runTool(t, "simulate", "-in", path, "-top", "4")
	if !strings.Contains(out, "|00>") || !strings.Contains(out, "|11>") || !strings.Contains(out, "0.5000") {
		t.Fatalf("simulate output:\n%s", out)
	}
}

func TestToolErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"stats"},
		{"stats", "-in", "/nonexistent.qasm"},
		{"convert", "-in", "/nonexistent.qasm", "-out", "/tmp/x.qasm"},
		{"convert", "-in", "/nonexistent.qasm"},
		{"simulate", "-in", "/nonexistent.qasm"},
	}
	for i, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestSimulateTooWide(t *testing.T) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\nqreg q[30];\nh q[0];\n")
	path := writeQASM(t, b.String())
	var buf bytes.Buffer
	if err := run([]string{"simulate", "-in", path}, &buf); err == nil {
		t.Fatalf("30-qubit simulation should be refused")
	}
}
