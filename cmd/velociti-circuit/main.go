// Command velociti-circuit is a toolbox for explicit gate-level circuits:
// inspect, convert between OpenQASM and JSON, optimize, route, and
// functionally simulate.
//
//	velociti-circuit stats    -in qft.qasm
//	velociti-circuit convert  -in circuit.qasm -out circuit.json
//	velociti-circuit optimize -in circuit.qasm -out smaller.qasm
//	velociti-circuit route    -in circuit.qasm -chain-length 16
//	velociti-circuit simulate -in bell.qasm -top 8
//
// Inputs ending in .json load the framework's circuit JSON; anything else
// parses as OpenQASM 2.0 (with include resolution relative to the file).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"velociti/internal/circuit"
	"velociti/internal/config"
	"velociti/internal/perf"
	"velociti/internal/placement"
	"velociti/internal/qasm"
	"velociti/internal/route"
	"velociti/internal/statevec"
	"velociti/internal/ti"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "velociti-circuit:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: velociti-circuit <stats|convert|optimize|route|simulate> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "stats":
		return cmdStats(rest, out)
	case "convert":
		return cmdConvert(rest, out)
	case "optimize":
		return cmdOptimize(rest, out)
	case "route":
		return cmdRoute(rest, out)
	case "simulate":
		return cmdSimulate(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q (want stats, convert, optimize, route, or simulate)", cmd)
	}
}

// load reads a circuit from a path, dispatching on extension.
func load(path string) (*circuit.Circuit, error) {
	if path == "" {
		return nil, fmt.Errorf("-in is required")
	}
	if strings.HasSuffix(path, ".json") {
		return config.LoadCircuit(path)
	}
	res, err := qasm.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return res.Circuit, nil
}

// save writes a circuit to a path, dispatching on extension.
func save(path string, c *circuit.Circuit) error {
	if strings.HasSuffix(path, ".json") {
		return config.SaveCircuit(path, c)
	}
	return qasm.WriteFile(path, c)
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "", "input circuit (.qasm or .json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := load(*in)
	if err != nil {
		return err
	}
	spec := c.Spec()
	fmt.Fprintf(out, "name:         %s\n", c.Name)
	fmt.Fprintf(out, "qubits:       %d\n", spec.Qubits)
	fmt.Fprintf(out, "gates:        %d (%d one-qubit, %d two-qubit)\n",
		c.NumGates(), spec.OneQubitGates, spec.TwoQubitGates)
	fmt.Fprintf(out, "depth:        %d\n", c.Depth())
	fmt.Fprintf(out, "2q/qubit:     %.2f\n", c.TwoQubitRatio())
	kinds := map[string]int{}
	for _, g := range c.Gates() {
		kinds[g.Kind.Name()]++
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "gate mix:    ")
	for _, k := range names {
		fmt.Fprintf(out, " %s×%d", k, kinds[k])
	}
	fmt.Fprintln(out)
	return nil
}

func cmdConvert(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "input circuit (.qasm or .json)")
	outPath := fs.String("out", "", "output path (.qasm or .json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("-out is required")
	}
	c, err := load(*in)
	if err != nil {
		return err
	}
	if err := save(*outPath, c); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d gates)\n", *outPath, c.NumGates())
	return nil
}

func cmdOptimize(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	in := fs.String("in", "", "input circuit (.qasm or .json)")
	outPath := fs.String("out", "", "optional output path for the optimized circuit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := load(*in)
	if err != nil {
		return err
	}
	opt, st := c.Optimize()
	fmt.Fprintf(out, "%d gates → %d gates (cancelled %d, fused %d, identities %d)\n",
		c.NumGates(), opt.NumGates(), st.Cancelled, st.Fused, st.Identities)
	if *outPath != "" {
		if err := save(*outPath, opt); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}

func cmdRoute(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	in := fs.String("in", "", "input circuit (.qasm or .json)")
	chainLen := fs.Int("chain-length", 16, "ions per chain")
	alpha := fs.Float64("alpha", 2, "weak-link penalty")
	outPath := fs.String("out", "", "optional output path for the routed circuit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := load(*in)
	if err != nil {
		return err
	}
	lat := perf.DefaultLatencies()
	lat.WeakPenalty = *alpha
	d, err := ti.DeviceFor(c.NumQubits(), *chainLen, ti.Ring)
	if err != nil {
		return err
	}
	layout, err := placement.Sequential{}.Place(d, c.NumQubits(), nil)
	if err != nil {
		return err
	}
	orig, routed, res, err := route.Evaluate(c, layout, lat)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "machine: %s\n", d)
	fmt.Fprintf(out, "original: %.1f µs parallel, routed: %.1f µs (%d migrations, %d swaps)\n",
		orig, routed, res.Migrations, res.SwapsInserted)
	if *outPath != "" {
		if err := save(*outPath, res.Routed); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}

func cmdSimulate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	in := fs.String("in", "", "input circuit (.qasm or .json)")
	top := fs.Int("top", 8, "number of highest-probability outcomes to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := load(*in)
	if err != nil {
		return err
	}
	if c.NumQubits() > statevec.MaxQubits {
		return fmt.Errorf("circuit has %d qubits; the simulator supports up to %d", c.NumQubits(), statevec.MaxQubits)
	}
	s, err := statevec.Run(c)
	if err != nil {
		return err
	}
	type outcome struct {
		basis uint64
		p     float64
	}
	var outcomes []outcome
	for i := uint64(0); i < 1<<uint(c.NumQubits()); i++ {
		if p := s.Probability(i); p > 1e-12 {
			outcomes = append(outcomes, outcome{i, p})
		}
	}
	sort.Slice(outcomes, func(i, j int) bool {
		if outcomes[i].p != outcomes[j].p {
			return outcomes[i].p > outcomes[j].p
		}
		return outcomes[i].basis < outcomes[j].basis
	})
	if *top < len(outcomes) {
		outcomes = outcomes[:*top]
	}
	fmt.Fprintf(out, "%d qubits, %d gates; top outcomes (qubit 0 rightmost):\n", c.NumQubits(), c.NumGates())
	for _, o := range outcomes {
		fmt.Fprintf(out, "  |%0*b>  %.6f\n", c.NumQubits(), o.basis, o.p)
	}
	return nil
}
