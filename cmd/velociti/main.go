// Command velociti runs one VelociTI simulation: a workload (abstract
// boundary conditions, a Table II application, a JSON circuit, or an
// OpenQASM file) placed-and-routed onto a trapped-ion machine, evaluated
// under the serial and parallel performance models across randomized
// trials.
//
// The flag set mirrors the paper's Table I parameters:
//
//	velociti -qubits 64 -two-qubit-gates 560 -chain-length 16
//	velociti -app QFT -chain-length 32 -alpha 1.4 -runs 35
//	velociti -qasm circuit.qasm -chain-length 16 -verbose
//	velociti -config params.json -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"velociti/internal/apps"
	"velociti/internal/circuit"
	"velociti/internal/config"
	"velociti/internal/core"
	"velociti/internal/fidelity"
	"velociti/internal/perf"
	"velociti/internal/qasm"
	"velociti/internal/shuttle"
	"velociti/internal/stats"
	"velociti/internal/verr"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		// Input-kind failures get an explicit marker so scripts (and
		// humans) can tell a bad invocation from a framework bug.
		if verr.IsInput(err) {
			fmt.Fprintln(os.Stderr, "velociti: invalid input:", err)
		} else {
			fmt.Fprintln(os.Stderr, "velociti:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("velociti", flag.ContinueOnError)
	var (
		qubits     = fs.Int("qubits", 0, "number of qubits in the workload")
		oneQ       = fs.Int("one-qubit-gates", 0, "number of 1-qubit gates (q)")
		twoQ       = fs.Int("two-qubit-gates", 0, "number of 2-qubit gates (p)")
		app        = fs.String("app", "", "Table II application (Supremacy, QAOA, SquareRoot, QFT, Adder, BV)")
		appGates   = fs.Bool("app-gates", false, "with -app: simulate the gate-level generator instead of the abstract spec")
		circJSON   = fs.String("circuit", "", "path to a JSON circuit file (explicit mode)")
		qasmPath   = fs.String("qasm", "", "path to an OpenQASM 2.0 file (explicit mode)")
		cfgPath    = fs.String("config", "", "path to a JSON params file (other workload flags override it)")
		saveConfig = fs.String("save-config", "", "write the effective configuration to this JSON file and continue")
		chainLen   = fs.Int("chain-length", 16, "ions per chain (paper range: 8-32)")
		topology   = fs.String("topology", "ring", "weak-link topology: ring or line")
		delta      = fs.Float64("delta", 1, "1-qubit gate latency in microseconds")
		gamma      = fs.Float64("gamma", 100, "2-qubit gate latency in microseconds")
		alpha      = fs.Float64("alpha", 2, "weak-link penalty factor (>= 1)")
		placementF = fs.String("placement", "random", "qubit placement: random, round-robin, or sequential")
		placer     = fs.String("placer", "random", "gate placement: random, weak-avoiding, load-balanced, edge-constrained, or annealed")
		runs       = fs.Int("runs", core.DefaultRuns, "randomized trials to average over")
		seed       = fs.Int64("seed", 1, "master random seed")
		jsonOut    = fs.Bool("json", false, "emit the full report as JSON")
		verbose    = fs.Bool("verbose", false, "print the critical path and chain layout of one trial")
		dotPath    = fs.String("dot", "", "write one trial's gate dependency graph as Graphviz DOT to this file")
		gantt      = fs.Bool("gantt", false, "print one trial's schedule as an ASCII Gantt chart")
		timelineJS = fs.String("timeline-json", "", "write one trial's full schedule as JSON to this file")
		fidelityF  = fs.Bool("fidelity", false, "print one trial's success-probability estimate")
		shuttleF   = fs.Bool("shuttle", false, "compare weak-link vs ion-shuttling communication on one trial")
		backendF   = fs.String("backend", "", "timing backend: weaklink (default) or shuttle (explicit ion transport)")
		workers    = fs.Int("workers", 1, "trials to run concurrently")
		streamF    = fs.Bool("stream", false, "memory-bounded streaming evaluation: generate, place, and price gates in one pass without materializing the circuit (report omits critical paths)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := config.Default()
	if *cfgPath != "" {
		loaded, err := config.LoadParams(*cfgPath)
		if err != nil {
			return err
		}
		params = loaded
	}
	// Flags override the config file.
	params.ChainLength = *chainLen
	params.Topology = *topology
	params.Latencies = perf.Latencies{OneQubit: *delta, TwoQubit: *gamma, WeakPenalty: *alpha}
	params.Placement = *placementF
	params.Placer = *placer
	params.Runs = *runs
	params.Seed = *seed
	// Unlike the flags above, -backend only overrides the config file when
	// given: its empty default would otherwise stomp a configured backend.
	if *backendF != "" {
		params.Backend = *backendF
	}

	// A workload comes from exactly one source. Silently ignoring a
	// conflicting flag (e.g. -app QFT -qubits 32 dropping -qubits) would
	// report results for a different workload than the one asked for.
	var sources []string
	if *app != "" {
		sources = append(sources, "-app")
	}
	if *circJSON != "" {
		sources = append(sources, "-circuit")
	}
	if *qasmPath != "" {
		sources = append(sources, "-qasm")
	}
	if *qubits > 0 {
		sources = append(sources, "-qubits")
	}
	if len(sources) > 1 {
		return verr.Inputf("conflicting workload flags %s: pass exactly one workload source", strings.Join(sources, " and "))
	}
	if *qubits <= 0 && (*oneQ != 0 || *twoQ != 0) {
		return verr.Inputf("-one-qubit-gates/-two-qubit-gates need -qubits to define the abstract workload")
	}
	if *streamF && (*verbose || *dotPath != "" || *gantt || *timelineJS != "" || *fidelityF || *shuttleF) {
		// The per-trial inspection extras all reconstruct materialized
		// artifacts (critical paths, gate graphs, timelines) — exactly what
		// streaming avoids holding.
		return verr.Inputf("-stream cannot produce per-trial inspection output; drop -verbose/-dot/-gantt/-timeline-json/-fidelity/-shuttle or drop -stream")
	}
	params.Stream = *streamF

	var explicit *circuit.Circuit
	var prog *circuit.Program
	switch {
	case *app != "":
		a, err := apps.ByName(*app)
		if err != nil {
			return err
		}
		if *appGates && *streamF {
			// Streaming keeps the generator as a Program: gates are
			// re-emitted per trial, never stored.
			p, err := a.Program()
			if err != nil {
				return err
			}
			prog = &p
		} else if *appGates {
			explicit, err = a.Build()
			if err != nil {
				return err
			}
		} else {
			params.Workload = a.Spec
		}
	case *circJSON != "":
		c, err := config.LoadCircuit(*circJSON)
		if err != nil {
			return err
		}
		explicit = c
	case *qasmPath != "":
		res, err := qasm.ParseFile(*qasmPath)
		if err != nil {
			return err
		}
		explicit = res.Circuit
	case *qubits > 0:
		params.Workload = circuit.Spec{
			Name:          "cli",
			Qubits:        *qubits,
			OneQubitGates: *oneQ,
			TwoQubitGates: *twoQ,
		}
	case *cfgPath != "":
		// Workload comes from the config file.
	default:
		return verr.Inputf("no workload: pass -qubits/-two-qubit-gates, -app, -circuit, -qasm, or -config (see -h)")
	}

	if *saveConfig != "" {
		if err := params.Save(*saveConfig); err != nil {
			return err
		}
	}

	var cfg core.Config
	var err error
	if prog != nil {
		cfg, err = params.ToCoreConfigWithProgram(prog)
	} else {
		cfg, err = params.ToCoreConfigWithCircuit(explicit)
	}
	if err != nil {
		return err
	}
	cfg.Workers = *workers
	report, err := core.Run(cfg)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	printReport(out, report)

	if *verbose || *dotPath != "" || *gantt || *fidelityF || *shuttleF || *timelineJS != "" {
		c, layout, res, err := core.RunOnce(cfg, stats.SplitSeed(cfg.Seed, 0))
		if err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(out, "\n--- trial 0 detail ---\n")
			fmt.Fprint(out, layout.String())
			fmt.Fprintf(out, "critical path (%d gates):", len(res.CriticalPath))
			for _, label := range res.CriticalPath {
				fmt.Fprintf(out, " %s", label)
			}
			fmt.Fprintln(out)
		}
		if *gantt || *timelineJS != "" {
			tl, err := perf.BuildTimeline(c, layout, cfg.Latencies)
			if err != nil {
				return err
			}
			if *gantt {
				fmt.Fprint(out, tl.Gantt(100))
			}
			if *timelineJS != "" {
				data, err := json.MarshalIndent(tl, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*timelineJS, data, 0o644); err != nil {
					return err
				}
				fmt.Fprintf(out, "wrote timeline to %s\n", *timelineJS)
			}
		}
		if *fidelityF {
			est, err := fidelity.Default().Estimate(c, layout, cfg.Latencies)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, est)
		}
		if *shuttleF {
			sp := params.ShuttleParams()
			cmp, err := shuttle.Compare(c, layout, cfg.Latencies, sp)
			if err != nil {
				return err
			}
			breakEven, err := sp.BreakEvenAlpha(cfg.Latencies)
			if err != nil {
				return err
			}
			winner := "weak link"
			if !cmp.WeakLinkWins() {
				winner = "shuttling"
			}
			fmt.Fprintf(out, "weak-link parallel %.1f µs vs shuttling %.1f µs over %d cross-chain gates → %s wins (break-even α = %.2f)\n",
				cmp.WeakLinkMicros, cmp.ShuttleMicros, cmp.CrossGates, winner,
				breakEven)
		}
		if *dotPath != "" {
			g := perf.BuildGateGraph(c, layout, cfg.Latencies)
			if err := os.WriteFile(*dotPath, []byte(g.DOT(report.Spec.Name)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote dependency graph to %s\n", *dotPath)
		}
	}
	return nil
}

func printReport(out io.Writer, r *core.Report) {
	fmt.Fprintf(out, "workload: %s\n", r.Spec)
	fmt.Fprintf(out, "machine:  %d chains of %d ions (%s, %d weak links)\n",
		r.Device.NumChains, r.Device.ChainLength, r.Device.Topology, r.Device.MaxWeakLinks)
	fmt.Fprintf(out, "trials:   %d\n", len(r.Trials))
	fmt.Fprintf(out, "serial:   %.3f ms  (min %.3f, max %.3f)\n",
		r.Serial.Mean/1000, r.Serial.Min/1000, r.Serial.Max/1000)
	fmt.Fprintf(out, "parallel: %.3f ms  (min %.3f, max %.3f)\n",
		r.Parallel.Mean/1000, r.Parallel.Min/1000, r.Parallel.Max/1000)
	fmt.Fprintf(out, "speedup:  %.2fx\n", r.MeanSpeedup())
	fmt.Fprintf(out, "weak-link gates: %.1f mean (links used: %.1f of %d)\n",
		r.WeakGates.Mean, r.LinksUsed.Mean, r.Device.MaxWeakLinks)
}
