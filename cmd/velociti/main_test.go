package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"velociti/internal/core"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func runCLIErr(t *testing.T, args ...string) error {
	t.Helper()
	var buf bytes.Buffer
	return run(args, &buf)
}

func TestAbstractWorkload(t *testing.T) {
	out := runCLI(t, "-qubits", "32", "-two-qubit-gates", "100", "-chain-length", "8", "-runs", "3")
	for _, want := range []string{"32 qubits", "4 chains of 8 ions", "speedup:", "weak-link gates"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAppWorkloadQFTAnchor(t *testing.T) {
	out := runCLI(t, "-app", "QFT", "-runs", "3")
	// The paper's exact serial time for QFT on 16-ion chains.
	if !strings.Contains(out, "serial:   403.600 ms") {
		t.Errorf("QFT serial should be 403.600 ms:\n%s", out)
	}
}

func TestAppGateLevelMode(t *testing.T) {
	out := runCLI(t, "-app", "BV", "-app-gates", "-runs", "2")
	if !strings.Contains(out, "bv64") {
		t.Errorf("gate-level BV workload expected:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	out := runCLI(t, "-qubits", "16", "-two-qubit-gates", "20", "-chain-length", "8", "-runs", "2", "-json")
	var rep core.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(rep.Trials) != 2 || rep.Device.NumChains != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestVerboseAndDot(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "g.dot")
	out := runCLI(t, "-qubits", "8", "-two-qubit-gates", "10", "-chain-length", "4",
		"-runs", "2", "-verbose", "-dot", dot)
	if !strings.Contains(out, "critical path") || !strings.Contains(out, "chain 0:") {
		t.Errorf("verbose detail missing:\n%s", out)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("dot file malformed: %s", data)
	}
}

func TestConfigRoundTripViaFlags(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "params.json")
	runCLI(t, "-qubits", "16", "-two-qubit-gates", "30", "-chain-length", "8",
		"-runs", "2", "-save-config", cfgPath)
	out := runCLI(t, "-config", cfgPath)
	if !strings.Contains(out, "16 qubits") {
		t.Errorf("config-driven run wrong:\n%s", out)
	}
}

func TestQASMWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.qasm")
	src := "OPENQASM 2.0;\nqreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-qasm", path, "-chain-length", "2", "-runs", "2")
	if !strings.Contains(out, "4 qubits") || !strings.Contains(out, "3 2q gates") {
		t.Errorf("qasm workload wrong:\n%s", out)
	}
}

func TestCircuitJSONWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	body := `{"name":"j","qubits":4,"gates":[{"kind":"cx","qubits":[0,1]},{"kind":"cx","qubits":[2,3]}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-circuit", path, "-chain-length", "4", "-runs", "2")
	if !strings.Contains(out, "2 2q gates") {
		t.Errorf("json circuit workload wrong:\n%s", out)
	}
}

func TestErrorCases(t *testing.T) {
	cases := [][]string{
		{},                          // no workload
		{"-app", "Shor"},            // unknown app
		{"-qubits", "8"},            // fine actually? zero gates is valid
		{"-qasm", "/nonexistent.q"}, // missing file
		{"-qubits", "8", "-two-qubit-gates", "4", "-alpha", "0.5"},    // bad alpha
		{"-qubits", "8", "-two-qubit-gates", "4", "-topology", "hex"}, // bad topology
		{"-qubits", "8", "-two-qubit-gates", "4", "-placer", "x"},     // bad placer
		{"-config", "/nonexistent.json"},
	}
	for i, args := range cases {
		if i == 2 {
			// Zero gates is a legal degenerate workload.
			if err := runCLIErr(t, args...); err != nil {
				t.Errorf("case %d (%v): unexpected error %v", i, args, err)
			}
			continue
		}
		if err := runCLIErr(t, args...); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestAlphaAffectsParallelTime(t *testing.T) {
	hi := runCLI(t, "-qubits", "64", "-two-qubit-gates", "128", "-chain-length", "16", "-runs", "5", "-json")
	lo := runCLI(t, "-qubits", "64", "-two-qubit-gates", "128", "-chain-length", "16", "-runs", "5", "-alpha", "1.0", "-json")
	var repHi, repLo core.Report
	if err := json.Unmarshal([]byte(hi), &repHi); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lo), &repLo); err != nil {
		t.Fatal(err)
	}
	if repLo.Parallel.Mean >= repHi.Parallel.Mean {
		t.Errorf("α=1 parallel %v should beat α=2 %v", repLo.Parallel.Mean, repHi.Parallel.Mean)
	}
}

func TestGanttFidelityShuttleFlags(t *testing.T) {
	out := runCLI(t, "-app", "BV", "-runs", "2", "-gantt", "-fidelity", "-shuttle", "-workers", "3")
	for _, want := range []string{"gantt:", "chain  0", "fidelity", "expected errors", "break-even"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineJSONFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.json")
	out := runCLI(t, "-qubits", "8", "-two-qubit-gates", "12", "-chain-length", "4",
		"-runs", "2", "-timeline-json", path)
	if !strings.Contains(out, "wrote timeline") {
		t.Fatalf("missing confirmation:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tl struct {
		Intervals []struct {
			Label string `json:"label"`
		} `json:"intervals"`
		Makespan float64 `json:"makespan_us"`
	}
	if err := json.Unmarshal(data, &tl); err != nil {
		t.Fatalf("timeline json invalid: %v", err)
	}
	if len(tl.Intervals) != 12 || tl.Makespan <= 0 {
		t.Fatalf("timeline content wrong: %d intervals, makespan %v", len(tl.Intervals), tl.Makespan)
	}
}

func TestBackendFlagShuttle(t *testing.T) {
	base := []string{"-qubits", "16", "-two-qubit-gates", "20", "-chain-length", "8", "-runs", "2", "-json"}
	var weak, shut core.Report
	if err := json.Unmarshal([]byte(runCLI(t, base...)), &weak); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(runCLI(t, append([]string{"-backend", "shuttle"}, base...)...)), &shut); err != nil {
		t.Fatal(err)
	}
	if weak.Parallel.Mean == shut.Parallel.Mean {
		t.Fatalf("shuttle backend should change the parallel time, both %v", weak.Parallel.Mean)
	}
	if weak.WeakGates.Mean != shut.WeakGates.Mean {
		t.Fatalf("weak-gate counts are timing-independent")
	}
	if err := runCLIErr(t, append([]string{"-backend", "bogus"}, base...)...); err == nil {
		t.Fatalf("unknown backend should error")
	}
}
