package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain turns this test binary into the real CLI when the re-exec
// marker is set: the exit-status tests below exec os.Args[0] with the
// marker, so they observe main()'s true exit code and stderr rather
// than a simulation of them.
func TestMain(m *testing.M) {
	if os.Getenv("VELOCITI_CLI_EXIT_TEST") == "1" {
		args := []string{os.Args[0]}
		if raw := os.Getenv("VELOCITI_CLI_EXIT_ARGS"); raw != "" {
			args = append(args, strings.Split(raw, "\x1f")...)
		}
		os.Args = args
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// execMain re-runs this test binary as the CLI with the given arguments,
// returning the exit code and captured stderr.
func execMain(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"VELOCITI_CLI_EXIT_TEST=1",
		"VELOCITI_CLI_EXIT_ARGS="+strings.Join(args, "\x1f"))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = io.Discard
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec failed: %v", err)
		}
		code = ee.ExitCode()
	}
	return code, stderr.String()
}

// checkDiagnostic asserts the errors-not-panics CLI contract: exit
// status 1, a single prefixed stderr line, and no stack trace.
func checkDiagnostic(t *testing.T, code int, stderr, prefix, substr string) {
	t.Helper()
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
	}
	if strings.Contains(stderr, "goroutine ") || strings.Contains(stderr, "panic:") {
		t.Fatalf("stderr contains a stack trace:\n%s", stderr)
	}
	line := strings.TrimSuffix(stderr, "\n")
	if line == "" || strings.Contains(line, "\n") {
		t.Errorf("stderr should be exactly one diagnostic line, got %q", stderr)
	}
	if !strings.HasPrefix(line, prefix) {
		t.Errorf("stderr = %q, want prefix %q", line, prefix)
	}
	if !strings.Contains(line, substr) {
		t.Errorf("stderr = %q, want it to mention %q", line, substr)
	}
}

func TestMalformedInputExitStatus(t *testing.T) {
	dir := t.TempDir()
	badQASM := filepath.Join(dir, "bad.qasm")
	if err := os.WriteFile(badQASM, []byte("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[9];\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		args   []string
		substr string
	}{
		{"no workload", nil, "no workload"},
		{"conflicting app and qubits", []string{"-app", "QFT", "-qubits", "32"}, "conflicting workload flags -app and -qubits"},
		{"unknown app", []string{"-app", "Nope"}, "unknown application"},
		{"gate counts without qubits", []string{"-two-qubit-gates", "50"}, "-qubits"},
		{"bad topology", []string{"-qubits", "8", "-two-qubit-gates", "4", "-topology", "torus"}, "topology"},
		{"missing circuit file", []string{"-circuit", filepath.Join(dir, "nope.json")}, "no such file"},
		{"malformed circuit json", []string{"-circuit", badJSON}, "config"},
		{"qasm out-of-range qubit", []string{"-qasm", badQASM}, "qasm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := execMain(t, tc.args...)
			checkDiagnostic(t, code, stderr, "velociti:", tc.substr)
		})
	}
}
