package velociti_test

import (
	"fmt"
	"log"

	"velociti"
)

// Example reproduces the paper's headline Case Study 1 data point: the
// 64-qubit QFT on 16-ion chains, whose serial time is exactly 403.6 ms.
func Example() {
	spec, _, err := velociti.AppByName("QFT")
	if err != nil {
		log.Fatal(err)
	}
	report, err := velociti.Run(velociti.Config{
		Spec:        spec,
		ChainLength: 16,
		Runs:        5,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chains: %d, weak links: %d\n", report.Device.NumChains, report.Device.MaxWeakLinks)
	fmt.Printf("serial: %.1f ms\n", report.Serial.Mean/1000)
	// Output:
	// chains: 4, weak links: 4
	// serial: 403.6 ms
}

// ExampleParseQASM imports an OpenQASM 2.0 program into the circuit IR.
func ExampleParseQASM() {
	c, err := velociti.ParseQASM("bell", `
		OPENQASM 2.0;
		include "qelib1.inc";
		qreg q[2];
		h q[0];
		cx q[0],q[1];
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d qubits, %d gates, depth %d\n", c.NumQubits(), c.NumGates(), c.Depth())
	// Output:
	// 2 qubits, 2 gates, depth 2
}

// ExampleSimulate functionally validates a circuit on the built-in
// state-vector simulator.
func ExampleSimulate() {
	ghz, err := velociti.GHZ(3)
	if err != nil {
		log.Fatal(err)
	}
	state, err := velociti.Simulate(ghz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(|000>) = %.2f, P(|111>) = %.2f\n", state.Probability(0), state.Probability(7))
	// Output:
	// P(|000>) = 0.50, P(|111>) = 0.50
}

// ExampleEvaluate scores an explicitly placed circuit under both
// performance models.
func ExampleEvaluate() {
	device, err := velociti.NewDevice(4, 2, velociti.Line)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := velociti.SequentialPlacement.Place(device, 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	c := velociti.NewCircuit("demo", 8)
	c.CX(0, 1) // intra-chain: γ
	c.CX(3, 4) // cross-chain: α·γ
	res, err := velociti.Evaluate(c, layout, velociti.DefaultLatencies())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel %.0f µs, weak gates %d\n", res.ParallelMicros, res.WeakGates)
	// Output:
	// parallel 200 µs, weak gates 1
}

// ExampleParetoFrontier explores the design space of a workload and keeps
// only the non-dominated time/fidelity configurations.
func ExampleParetoFrontier() {
	points, err := velociti.ExploreDesignSpace(
		velociti.Spec{Name: "w", Qubits: 32, TwoQubitGates: 64},
		velociti.DesignSpaceOptions{
			ChainLengths: []int{8, 32},
			Alphas:       []float64{2.0},
			Placers:      []string{"random"},
			Runs:         4,
			Seed:         1,
		})
	if err != nil {
		log.Fatal(err)
	}
	frontier := velociti.ParetoFrontier(points)
	fmt.Printf("%d of %d points are Pareto-optimal\n", len(frontier), len(points))
	// Output:
	// 1 of 2 points are Pareto-optimal
}
